//! Portable scalar tier: the always-available fallback and the
//! bit-identity reference every SIMD tier is property-tested against.
//!
//! The integer kernels carry the exact arithmetic of the `camp`
//! instruction (wrapping i32 accumulation of exact i8×i8 products)
//! over the shared 4×4 packed-panel layout; the f32 kernels realize
//! the per-element fma chain contract with [`f32::mul_add`].

/// Whole-depth 4×4 widening integer tile: for each of the `kcb`
/// k-values in the packed panels, `acc[i][j] += pa[l*4+i]·pb[l*4+j]`
/// (wrapping). One call per register tile per (jc, pc, ic) block —
/// the camp `tile` path of the host engine.
pub fn tile_i8(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    for (av, bv) in pa.chunks_exact(4).zip(pb.chunks_exact(4)) {
        for i in 0..4 {
            let a = av[i] as i32;
            let row = &mut acc[i];
            for j in 0..4 {
                row[j] = row[j].wrapping_add(a.wrapping_mul(bv[j] as i32));
            }
        }
    }
}

/// Widened register tile: one packed A panel against `nw` consecutive
/// packed B panels (`nw = acc.len() / 4`, `pb.len() = nw * pa.len()`),
/// accumulating into `acc[q*4 + i][j]` for panel `q`. The scalar tier
/// has no registers to widen into, so this is the canonical reference
/// loop over [`tile_i8`] — which is also exactly what SIMD tiers must
/// be bit-identical to (wrapping adds commute, so a tier may interleave
/// the panel sums any way it likes).
pub fn tile_i8_wide(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]]) {
    let panel = pa.len();
    for (q, sub) in acc.chunks_exact_mut(4).enumerate() {
        let sub: &mut [[i32; 4]; 4] = sub.try_into().expect("chunks_exact(4)");
        tile_i8(pa, &pb[q * panel..(q + 1) * panel], sub);
    }
}

/// Skinny-m kernel over raw row-major operands: accumulate
/// `c[i*n+j] += Σ_l a[i*k+l]·b[l*n+j]` (wrapping) with no packing at
/// all — for decode-shaped GeMMs the pack traffic would dominate.
pub fn small_m_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            let av = av as i32;
            let brow = &b[l * n..(l + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = cv.wrapping_add(av.wrapping_mul(bv as i32));
            }
        }
    }
}

/// Skinny-n kernel over raw row-major operands (n ≤ 8, m large): the
/// same row-sweep arithmetic as [`small_m_dense`] — every product exact,
/// every accumulation wrapping — so the two dense skinny paths are one
/// reference loop. SIMD tiers replace this with a kernel that holds the
/// whole ≤8-column C row in registers across k.
pub fn small_n_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    small_m_dense(m, n, k, a, b, c)
}

/// Panel matrix-vector primitive: one raw A row against one 4-column
/// packed B panel, `acc[j] += Σ_l a_row[l]·panel[l*4+j]` (wrapping).
/// The skinny paths build whole GeMMs out of this.
pub fn panel_mav(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    for (&av, bv) in a_row.iter().zip(panel.chunks_exact(4)) {
        let a = av as i32;
        for j in 0..4 {
            acc[j] = acc[j].wrapping_add(a.wrapping_mul(bv[j] as i32));
        }
    }
}

// ---- pack routines --------------------------------------------------------
//
// The scalar packers are the layout reference: SIMD tiers must produce
// byte-identical images (proptested in `tests/host_kernels.rs`), since
// a panel packed by any component — engine, weight registry, session
// stager — is consumed by whichever tier dispatch selected.

/// Pack a block of row-major B starting at column `jc`, depth `pc` into
/// 4-column panels (row-major within the panel), zero-padded past the
/// matrix edge. `buf` must hold exactly `ncb * kcb` bytes; its length
/// determines the block width.
pub fn pack_b_block(
    buf: &mut [i8],
    b: &[i8],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    kcb: usize,
) {
    let panel = kcb * 4;
    for (q, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let j0 = jc + q * 4;
        for l in 0..kcb {
            let lg = pc + l;
            for (cx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                let j = j0 + cx;
                *out = if lg < k && j < n { b[lg * n + j] } else { 0 };
            }
        }
    }
}

/// Pack a block of row-major A starting at row `ic`, depth `pc` into
/// 4-row panels (column-major within the panel), zero-padded past the
/// matrix edge. `buf` must hold exactly `mcb * kcb` bytes; its length
/// determines the block height.
pub fn pack_a_block(
    buf: &mut [i8],
    a: &[i8],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    kcb: usize,
) {
    let panel = kcb * 4;
    for (p, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let i0 = ic + p * 4;
        for l in 0..kcb {
            let lg = pc + l;
            for (rx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                let i = i0 + rx;
                *out = if lg < k && i < m { a[i * k + lg] } else { 0 };
            }
        }
    }
}

/// Pack 4-bit values two per byte, low nibble first (the layout the
/// `camp.s4` load path expects). An odd trailing element occupies the
/// low nibble of a final byte whose high nibble is zero.
pub fn pack_nibbles(vals: &[i8]) -> Vec<i8> {
    let mut out = Vec::with_capacity(vals.len().div_ceil(2));
    for pair in vals.chunks(2) {
        let lo = pair[0] as u8 & 0x0f;
        let hi = pair.get(1).map_or(0, |&v| (v as u8) << 4);
        out.push((lo | hi) as i8);
    }
    out
}

/// f32 4×4 register tile over packed panels (`pa` mr-interleaved, `pb`
/// nr-interleaved, depth `kcb`): continues each `acc` element's fma
/// chain with `mul_add` over `l` ascending.
pub fn f32_tile(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    debug_assert!(pa.len() >= kcb * 4 && pb.len() >= kcb * 4 && acc.len() >= 16);
    for l in 0..kcb {
        let av = &pa[l * 4..l * 4 + 4];
        let bv = &pb[l * 4..l * 4 + 4];
        for i in 0..4 {
            let a = av[i];
            for j in 0..4 {
                acc[i * 4 + j] = a.mul_add(bv[j], acc[i * 4 + j]);
            }
        }
    }
}

/// Skinny-m f32 kernel over raw operands; same per-element fma chain
/// (`l` ascending) as the blocked path, so results are bit-identical.
pub fn f32_small_m(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            let brow = &b[l * n..(l + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{gemm_f32_fma_ref, gemm_i32_ref, SplitMix64};

    #[test]
    fn tile_matches_reference_4x4() {
        let mut r = SplitMix64::new(1);
        let kcb = 48;
        let pa = r.i8_vec(kcb * 4, -128, 127);
        let pb = r.i8_vec(kcb * 4, -128, 127);
        let mut acc = [[0i32; 4]; 4];
        tile_i8(&pa, &pb, &mut acc);
        // unpack to row-major and compare
        let mut a = vec![0i8; 4 * kcb];
        let mut b = vec![0i8; kcb * 4];
        for l in 0..kcb {
            for t in 0..4 {
                a[t * kcb + l] = pa[l * 4 + t];
                b[l * 4 + t] = pb[l * 4 + t];
            }
        }
        let want = gemm_i32_ref(4, 4, kcb, &a, &b);
        let flat: Vec<i32> = acc.iter().flatten().copied().collect();
        assert_eq!(flat, want);
    }

    #[test]
    fn tile_accumulates_across_calls() {
        let mut r = SplitMix64::new(2);
        let pa = r.i8_vec(16 * 4, -16, 16);
        let pb = r.i8_vec(16 * 4, -16, 16);
        let mut once = [[0i32; 4]; 4];
        tile_i8(&pa, &pb, &mut once);
        let mut twice = [[0i32; 4]; 4];
        tile_i8(&pa[..8 * 4], &pb[..8 * 4], &mut twice);
        tile_i8(&pa[8 * 4..], &pb[8 * 4..], &mut twice);
        assert_eq!(once, twice, "split-depth calls must fold identically");
    }

    #[test]
    fn small_m_dense_matches_reference() {
        let mut r = SplitMix64::new(3);
        for (m, n, k) in [(1, 17, 9), (2, 64, 33), (8, 5, 3)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let mut c = vec![0i32; m * n];
            small_m_dense(m, n, k, &a, &b, &mut c);
            assert_eq!(c, gemm_i32_ref(m, n, k, &a, &b), "{m}x{n}x{k}");
        }
    }

    #[test]
    fn panel_mav_matches_reference_column() {
        let mut r = SplitMix64::new(4);
        let k = 37;
        let a_row = r.i8_vec(k, -128, 127);
        let bcols = r.i8_vec(k * 4, -128, 127);
        let mut acc = [0i32; 4];
        panel_mav(&mut acc, &a_row, &bcols);
        let want = gemm_i32_ref(1, 4, k, &a_row, &bcols);
        assert_eq!(acc.to_vec(), want);
    }

    #[test]
    fn f32_small_m_matches_fma_reference_bitwise() {
        let mut r = SplitMix64::new(5);
        let (m, n, k) = (3, 29, 17);
        let a: Vec<f32> = (0..m * k).map(|_| r.next_i8(-64, 64) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|_| r.next_i8(-64, 64) as f32 * 0.5).collect();
        let mut c = vec![0f32; m * n];
        f32_small_m(m, n, k, &a, &b, &mut c);
        let want = gemm_f32_fma_ref(m, n, k, &a, &b);
        assert!(c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
