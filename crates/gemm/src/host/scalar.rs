//! Portable scalar tier: the always-available fallback and the
//! bit-identity reference every SIMD tier is property-tested against.
//!
//! The integer kernels carry the exact arithmetic of the `camp`
//! instruction (wrapping i32 accumulation of exact i8×i8 products)
//! over the shared 4×4 packed-panel layout; the f32 kernels realize
//! the per-element fma chain contract with [`f32::mul_add`].

/// Whole-depth 4×4 widening integer tile: for each of the `kcb`
/// k-values in the packed panels, `acc[i][j] += pa[l*4+i]·pb[l*4+j]`
/// (wrapping). One call per register tile per (jc, pc, ic) block —
/// the camp `tile` path of the host engine.
pub fn tile_i8(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    for (av, bv) in pa.chunks_exact(4).zip(pb.chunks_exact(4)) {
        for i in 0..4 {
            let a = av[i] as i32;
            let row = &mut acc[i];
            for j in 0..4 {
                row[j] = row[j].wrapping_add(a.wrapping_mul(bv[j] as i32));
            }
        }
    }
}

/// Skinny-m kernel over raw row-major operands: accumulate
/// `c[i*n+j] += Σ_l a[i*k+l]·b[l*n+j]` (wrapping) with no packing at
/// all — for decode-shaped GeMMs the pack traffic would dominate.
pub fn small_m_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            let av = av as i32;
            let brow = &b[l * n..(l + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = cv.wrapping_add(av.wrapping_mul(bv as i32));
            }
        }
    }
}

/// Panel matrix-vector primitive: one raw A row against one 4-column
/// packed B panel, `acc[j] += Σ_l a_row[l]·panel[l*4+j]` (wrapping).
/// The skinny paths build whole GeMMs out of this.
pub fn panel_mav(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    for (&av, bv) in a_row.iter().zip(panel.chunks_exact(4)) {
        let a = av as i32;
        for j in 0..4 {
            acc[j] = acc[j].wrapping_add(a.wrapping_mul(bv[j] as i32));
        }
    }
}

/// f32 4×4 register tile over packed panels (`pa` mr-interleaved, `pb`
/// nr-interleaved, depth `kcb`): continues each `acc` element's fma
/// chain with `mul_add` over `l` ascending.
pub fn f32_tile(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    debug_assert!(pa.len() >= kcb * 4 && pb.len() >= kcb * 4 && acc.len() >= 16);
    for l in 0..kcb {
        let av = &pa[l * 4..l * 4 + 4];
        let bv = &pb[l * 4..l * 4 + 4];
        for i in 0..4 {
            let a = av[i];
            for j in 0..4 {
                acc[i * 4 + j] = a.mul_add(bv[j], acc[i * 4 + j]);
            }
        }
    }
}

/// Skinny-m f32 kernel over raw operands; same per-element fma chain
/// (`l` ascending) as the blocked path, so results are bit-identical.
pub fn f32_small_m(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            let brow = &b[l * n..(l + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{gemm_f32_fma_ref, gemm_i32_ref, SplitMix64};

    #[test]
    fn tile_matches_reference_4x4() {
        let mut r = SplitMix64::new(1);
        let kcb = 48;
        let pa = r.i8_vec(kcb * 4, -128, 127);
        let pb = r.i8_vec(kcb * 4, -128, 127);
        let mut acc = [[0i32; 4]; 4];
        tile_i8(&pa, &pb, &mut acc);
        // unpack to row-major and compare
        let mut a = vec![0i8; 4 * kcb];
        let mut b = vec![0i8; kcb * 4];
        for l in 0..kcb {
            for t in 0..4 {
                a[t * kcb + l] = pa[l * 4 + t];
                b[l * 4 + t] = pb[l * 4 + t];
            }
        }
        let want = gemm_i32_ref(4, 4, kcb, &a, &b);
        let flat: Vec<i32> = acc.iter().flatten().copied().collect();
        assert_eq!(flat, want);
    }

    #[test]
    fn tile_accumulates_across_calls() {
        let mut r = SplitMix64::new(2);
        let pa = r.i8_vec(16 * 4, -16, 16);
        let pb = r.i8_vec(16 * 4, -16, 16);
        let mut once = [[0i32; 4]; 4];
        tile_i8(&pa, &pb, &mut once);
        let mut twice = [[0i32; 4]; 4];
        tile_i8(&pa[..8 * 4], &pb[..8 * 4], &mut twice);
        tile_i8(&pa[8 * 4..], &pb[8 * 4..], &mut twice);
        assert_eq!(once, twice, "split-depth calls must fold identically");
    }

    #[test]
    fn small_m_dense_matches_reference() {
        let mut r = SplitMix64::new(3);
        for (m, n, k) in [(1, 17, 9), (2, 64, 33), (8, 5, 3)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let mut c = vec![0i32; m * n];
            small_m_dense(m, n, k, &a, &b, &mut c);
            assert_eq!(c, gemm_i32_ref(m, n, k, &a, &b), "{m}x{n}x{k}");
        }
    }

    #[test]
    fn panel_mav_matches_reference_column() {
        let mut r = SplitMix64::new(4);
        let k = 37;
        let a_row = r.i8_vec(k, -128, 127);
        let bcols = r.i8_vec(k * 4, -128, 127);
        let mut acc = [0i32; 4];
        panel_mav(&mut acc, &a_row, &bcols);
        let want = gemm_i32_ref(1, 4, k, &a_row, &bcols);
        assert_eq!(acc.to_vec(), want);
    }

    #[test]
    fn f32_small_m_matches_fma_reference_bitwise() {
        let mut r = SplitMix64::new(5);
        let (m, n, k) = (3, 29, 17);
        let a: Vec<f32> = (0..m * k).map(|_| r.next_i8(-64, 64) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|_| r.next_i8(-64, 64) as f32 * 0.5).collect();
        let mut c = vec![0f32; m * n];
        f32_small_m(m, n, k, &a, &b, &mut c);
        let want = gemm_f32_fma_ref(m, n, k, &a, &b);
        assert!(c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
