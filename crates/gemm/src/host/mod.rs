//! Host-speed micro-kernel tier with runtime CPU-feature dispatch.
//!
//! The [`crate::dispatch::MicroKernel`] descriptors select *simulated*
//! kernels — programs in the virtual vector ISA, timed by the pipeline
//! model. This module is the host-silicon analogue: a [`HostKernel`]
//! is a table of native micro-kernels (portable scalar, AVX2, AVX-512,
//! NEON) selected **once** from a [`CpuFeatures`] runtime probe and then
//! dispatched through plain function pointers on the hot path. The
//! pire/BLIS pattern: per-architecture micro-kernel + pack modules
//! behind a single runtime-dispatched seam.
//!
//! Three kernel families live behind the table:
//!
//! * **`tile_i8`** — the widening i8→i32 dot-product micro-kernel. It
//!   consumes one packed 4-row A panel and 4-column B panel across the
//!   *whole* depth block in a single call (so SIMD accumulators live in
//!   registers across the k loop), producing exactly the arithmetic of
//!   the `camp` instruction: wrapping i32 accumulation of exact i8×i8
//!   products. Wrapping addition is associative and commutative and the
//!   products are exact, so every tier is **bit-identical** by
//!   construction, regardless of how a tier reorders the summation.
//! * **`run_small_m` / `run_small_n`** — pire-style skinny paths (see
//!   [`crate::loops::small_path`]) that bypass the full Goto nest for
//!   GEMV-shaped serving GeMMs: decode steps (m ≤ 8) and narrow
//!   projections (n ≤ 8) skip A-packing and the padded register tile.
//! * **`f32` FMA kernels** — a self-contained float subsystem
//!   ([`HostGemmF32`] / [`gemm_f32`]) with per-tier register-block
//!   geometry (MR×NR). Float addition is *not* associative, so bit
//!   identity is pinned down differently: every tier computes each
//!   output element as one fused-multiply-add chain over `l` ascending
//!   (`acc = fma(a, b, acc)`). The scalar tier uses [`f32::mul_add`]
//!   (correctly rounded), AVX2 uses `vfmadd`, NEON uses `vfma` — the
//!   same chain in the same order, hence the same bits, which the
//!   parity proptests assert.
//!
//! Cache blocking (`mc`/`nc`/`kc`) is env-tunable via `CAMP_MC`,
//! `CAMP_NC` and `CAMP_KC` (validated; see [`int_blocking`] /
//! [`f32_blocking`]); `CAMP_FORCE_TIER={scalar,avx2,avx512,neon}` pins
//! dispatch to a specific tier (panicking if the CPU cannot run it),
//! and the older `CAMP_FORCE_SCALAR=1` remains as the scalar shorthand
//! (the CI job that keeps the fallback honest). The integer path keeps
//! one packed-panel layout across tiers — the 4-wide camp panel layout
//! shared with the weight registry and the serving session — so a
//! panel packed by any component is consumable by every tier. Tiers
//! differ only in how many adjacent panels one register-tile call
//! consumes (`int_nr/4`, see [`HostKernel::tile_i8_wide`]) and in how
//! the pack routines themselves are vectorized ([`HostKernel::pack_a_block`]
//! etc. — byte-identical images, SIMD-built).

// GEMM entry points naturally take (m, n, k, a, b, c) plus plan/tier
// context, and the kernel table's value is precisely its bare fn types.
#![allow(clippy::too_many_arguments, clippy::type_complexity)]

pub mod scalar;
pub mod small;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "aarch64")]
pub mod neon;

use std::fmt;
use std::sync::OnceLock;

use crate::loops::{for_each_b_block, for_each_row_strip, BlockPlan};
use crate::weights::HOST_BLOCKING;

pub use small::SmallB;

// ---- runtime feature probe ------------------------------------------------

/// What the host CPU can do, probed once at engine construction. The
/// probe is cheap and honest: on x86_64 it asks the OS/CPUID via
/// `is_x86_feature_detected!`; on aarch64 NEON is architecturally
/// guaranteed; everywhere else every flag is false and the scalar tier
/// serves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuFeatures {
    /// AVX2 256-bit integer/float SIMD (x86_64).
    pub avx2: bool,
    /// FMA3 fused multiply-add (x86_64; required for the AVX2 tier's
    /// f32 kernels).
    pub fma: bool,
    /// AVX-512 foundation (512-bit f32/i32 lanes; x86_64).
    pub avx512f: bool,
    /// AVX-512 byte/word instructions (zmm `vpshufb`/`vpmaddwd`;
    /// required, with `avx512f` and `avx512vl`, for the AVX-512 tier).
    pub avx512bw: bool,
    /// AVX-512 vector-length extensions (EVEX at 128/256-bit widths).
    pub avx512vl: bool,
    /// NEON/ASIMD (aarch64, architecturally mandatory).
    pub neon: bool,
}

impl CpuFeatures {
    /// Probe the running CPU.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: is_x86_feature_detected!("avx2"),
                fma: is_x86_feature_detected!("fma"),
                avx512f: is_x86_feature_detected!("avx512f"),
                avx512bw: is_x86_feature_detected!("avx512bw"),
                avx512vl: is_x86_feature_detected!("avx512vl"),
                neon: false,
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            CpuFeatures { neon: true, ..CpuFeatures::default() }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            CpuFeatures::default()
        }
    }

    /// True when this feature set admits the AVX-512 tier: the 512-bit
    /// foundation plus byte/word ops and vector-length extensions, and
    /// the AVX2+FMA the tier's fold/pack code paths lean on.
    pub fn has_avx512_tier(&self) -> bool {
        self.avx512f && self.avx512bw && self.avx512vl && self.avx2 && self.fma
    }

    /// Space-separated list of detected features, or `"portable"`.
    pub fn summary(&self) -> String {
        let mut out = Vec::new();
        if self.avx2 {
            out.push("avx2");
        }
        if self.fma {
            out.push("fma");
        }
        if self.avx512f {
            out.push("avx512f");
        }
        if self.avx512bw {
            out.push("avx512bw");
        }
        if self.avx512vl {
            out.push("avx512vl");
        }
        if self.neon {
            out.push("neon");
        }
        if out.is_empty() {
            "portable".to_string()
        } else {
            out.join(" ")
        }
    }
}

// ---- tiers ----------------------------------------------------------------

/// The implemented host-kernel tiers, best-first per architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostTier {
    /// Portable scalar Rust — always available, the bit-identity
    /// reference every SIMD tier is property-tested against.
    Scalar,
    /// x86_64 AVX2 (+FMA for f32): `vpshufb`/`vpmaddwd` widening i8
    /// tile (4×8 widened), 4×16 `vfmadd` f32 tile.
    Avx2,
    /// x86_64 AVX-512 (F+BW+VL): zmm `vpshufb`/`vpmaddwd` widening i8
    /// tile (4×16 widened), 8×32 `vfmadd` f32 tile.
    Avx512,
    /// aarch64 NEON: `smlal`-lane widening i8 tile, 4×8 `vfma` f32
    /// tile.
    Neon,
}

impl HostTier {
    /// Stable lowercase name (used in logs, benches, `BENCH_*.json`,
    /// and the `CAMP_FORCE_TIER` knob).
    pub fn name(self) -> &'static str {
        match self {
            HostTier::Scalar => "scalar",
            HostTier::Avx2 => "avx2",
            HostTier::Avx512 => "avx512",
            HostTier::Neon => "neon",
        }
    }

    /// True for the vectorized tiers.
    pub fn is_simd(self) -> bool {
        !matches!(self, HostTier::Scalar)
    }
}

// ---- the kernel table -----------------------------------------------------

/// One selected host-kernel tier: a table of function pointers filled
/// in by the tier module, dispatched once at engine construction (see
/// [`HostKernel::detect`]) and called directly ever after — no
/// per-call feature checks on the hot path.
///
/// Integer kernels operate on the shared 4×4 camp panel layout
/// ([`crate::weights::pack_a_block`] / [`crate::weights::pack_b_block`]),
/// so pre-packed weights and staged panels are tier-portable. The f32
/// kernels have per-tier register-block geometry (`f32_tile_shape`)
/// over their own packed layout, private to [`HostGemmF32`].
pub struct HostKernel {
    tier: HostTier,
    /// Whole-depth 4×4 widening integer tile kernel: `pa`/`pb` are one
    /// packed A panel and B panel of `kcb` k-values (`kcb*4` bytes,
    /// `kcb` a multiple of 8); accumulates into `acc` with wrapping
    /// i32 adds.
    pub(crate) tile_i8: fn(&[i8], &[i8], &mut [[i32; 4]; 4]),
    /// Widened register tile: one packed A panel against `int_nr/4`
    /// *adjacent* packed B panels per call (`pb` is their contiguous
    /// concatenation, `acc[q*4+i][j]` the tile for panel `q`). Same
    /// panel layout, same wrapping arithmetic — just more columns held
    /// in registers per A-side load/widen.
    pub(crate) tile_i8_wide: fn(&[i8], &[i8], &mut [[i32; 4]]),
    /// Columns of the widened integer register tile (4 on tiers with no
    /// widening headroom, 8 on AVX2, 16 on AVX-512). Always a multiple
    /// of 4: the packed-panel layout itself never changes.
    pub(crate) int_nr: usize,
    /// Skinny-m kernel over *raw* row-major operands (no packing at
    /// all): `(m, n, k, a, b, c)`, accumulating into `c`.
    pub(crate) small_m_dense: fn(usize, usize, usize, &[i8], &[i8], &mut [i32]),
    /// Skinny-n kernel over raw row-major operands (`n ≤ 8`): holds the
    /// whole ≤8-wide C row in registers across k, no packed-panel walk.
    pub(crate) small_n_dense: fn(usize, usize, usize, &[i8], &[i8], &mut [i32]),
    /// Panel matrix-vector primitive of the skinny paths:
    /// `acc[j] += Σ_l a_row[l]·panel[l*4+j]` (wrapping) over one
    /// 4-column packed B panel, `a_row.len()` k-values deep.
    pub(crate) panel_mav: fn(&mut [i32; 4], &[i8], &[i8]),
    /// f32 register tile: `(pa, pb, kcb, acc)` with `acc` an
    /// `mr×nr` row-major scratch; each element is continued as a
    /// single fma chain over `l` ascending.
    pub(crate) f32_tile: fn(&[f32], &[f32], usize, &mut [f32]),
    /// Skinny-m f32 kernel over raw operands, same fma-chain contract.
    pub(crate) f32_small_m: fn(usize, usize, usize, &[f32], &[f32], &mut [f32]),
    /// (MR, NR) of `f32_tile`.
    pub(crate) f32_mr: usize,
    pub(crate) f32_nr: usize,
    /// Tier-accelerated [`scalar::pack_a_block`]: byte-identical packed
    /// image (the scalar packer is the layout reference).
    pub(crate) pack_a: fn(&mut [i8], &[i8], usize, usize, usize, usize, usize),
    /// Tier-accelerated [`scalar::pack_b_block`]; byte-identical.
    pub(crate) pack_b: fn(&mut [i8], &[i8], usize, usize, usize, usize, usize),
    /// Tier-accelerated [`scalar::pack_nibbles`]; byte-identical.
    pub(crate) pack_nibbles: fn(&[i8]) -> Vec<i8>,
}

impl fmt::Debug for HostKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostKernel")
            .field("tier", &self.tier)
            .field("f32_tile", &(self.f32_mr, self.f32_nr))
            .finish()
    }
}

static SCALAR: HostKernel = HostKernel {
    tier: HostTier::Scalar,
    tile_i8: scalar::tile_i8,
    tile_i8_wide: scalar::tile_i8_wide,
    int_nr: 4,
    small_m_dense: scalar::small_m_dense,
    small_n_dense: scalar::small_n_dense,
    panel_mav: scalar::panel_mav,
    f32_tile: scalar::f32_tile,
    f32_small_m: scalar::f32_small_m,
    f32_mr: 4,
    f32_nr: 4,
    pack_a: scalar::pack_a_block,
    pack_b: scalar::pack_b_block,
    pack_nibbles: scalar::pack_nibbles,
};

#[cfg(target_arch = "x86_64")]
static AVX2: HostKernel = HostKernel {
    tier: HostTier::Avx2,
    tile_i8: avx2::tile_i8,
    tile_i8_wide: avx2::tile_i8_wide,
    int_nr: 8,
    small_m_dense: avx2::small_m_dense,
    small_n_dense: avx2::small_n_dense,
    panel_mav: avx2::panel_mav,
    f32_tile: avx2::f32_tile,
    f32_small_m: avx2::f32_small_m,
    f32_mr: 4,
    f32_nr: 16,
    pack_a: avx2::pack_a_block,
    pack_b: avx2::pack_b_block,
    pack_nibbles: avx2::pack_nibbles,
};

// The AVX-512 tier reuses the AVX2 packers and skinny-n kernel: packing
// and the ≤8-wide dense path are bandwidth-bound, with nothing for the
// extra vector width to amortize, and the AVX-512 feature gate implies
// AVX2. Only the register-tile kernels (where width buys arithmetic
// throughput) are zmm-specific.
#[cfg(target_arch = "x86_64")]
static AVX512: HostKernel = HostKernel {
    tier: HostTier::Avx512,
    tile_i8: avx512::tile_i8,
    tile_i8_wide: avx512::tile_i8_wide,
    int_nr: 16,
    small_m_dense: avx512::small_m_dense,
    small_n_dense: avx2::small_n_dense,
    panel_mav: avx512::panel_mav,
    f32_tile: avx512::f32_tile,
    f32_small_m: avx512::f32_small_m,
    f32_mr: 8,
    f32_nr: 32,
    pack_a: avx2::pack_a_block,
    pack_b: avx2::pack_b_block,
    pack_nibbles: avx2::pack_nibbles,
};

#[cfg(target_arch = "aarch64")]
static NEON: HostKernel = HostKernel {
    tier: HostTier::Neon,
    tile_i8: neon::tile_i8,
    tile_i8_wide: scalar::tile_i8_wide,
    int_nr: 4,
    small_m_dense: neon::small_m_dense,
    small_n_dense: scalar::small_n_dense,
    panel_mav: neon::panel_mav,
    f32_tile: neon::f32_tile,
    f32_small_m: neon::f32_small_m,
    f32_mr: 4,
    f32_nr: 8,
    pack_a: scalar::pack_a_block,
    pack_b: scalar::pack_b_block,
    pack_nibbles: scalar::pack_nibbles,
};

/// True when `CAMP_FORCE_SCALAR` pins dispatch to the portable tier
/// (any non-empty value other than `0`). Read once per process.
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("CAMP_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// Parse a `CAMP_FORCE_TIER` value. Pure so validation is unit-testable
/// without process-global env mutation; empty/unset means "no pin".
pub(crate) fn parse_forced_tier(raw: Option<String>) -> Result<Option<HostTier>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim() {
        "" => Ok(None),
        "scalar" => Ok(Some(HostTier::Scalar)),
        "avx2" => Ok(Some(HostTier::Avx2)),
        "avx512" => Ok(Some(HostTier::Avx512)),
        "neon" => Ok(Some(HostTier::Neon)),
        other => {
            Err(format!("CAMP_FORCE_TIER must be one of scalar|avx2|avx512|neon, got {other:?}"))
        }
    }
}

/// The tier `CAMP_FORCE_TIER` pins dispatch to, if any — the superset
/// of [`force_scalar`] (which remains as the scalar shorthand). Read
/// and validated once per process.
///
/// # Panics
/// Panics (once, at first use) on an unrecognized tier name, or when
/// `CAMP_FORCE_SCALAR` and `CAMP_FORCE_TIER` contradict each other —
/// loud beats a silently ignored pin.
pub fn forced_tier() -> Option<HostTier> {
    static FORCED: OnceLock<Option<HostTier>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let tier = parse_forced_tier(std::env::var("CAMP_FORCE_TIER").ok())
            .unwrap_or_else(|e| panic!("invalid tier override: {e}"));
        match (force_scalar(), tier) {
            (false, t) => t,
            (true, None | Some(HostTier::Scalar)) => Some(HostTier::Scalar),
            (true, Some(other)) => panic!(
                "CAMP_FORCE_SCALAR conflicts with CAMP_FORCE_TIER={}: unset one of them",
                other.name()
            ),
        }
    })
}

impl HostKernel {
    /// The best tier for the running CPU, honoring `CAMP_FORCE_TIER`
    /// and `CAMP_FORCE_SCALAR`. Probed once per process; the result is
    /// a `'static` table the engine stores and dispatches through
    /// directly.
    ///
    /// # Panics
    /// Panics when a forced tier is not runnable on this CPU/build — a
    /// pin that silently fell back would invalidate whatever the caller
    /// was trying to measure.
    pub fn detect() -> &'static HostKernel {
        static CHOSEN: OnceLock<&'static HostKernel> = OnceLock::new();
        CHOSEN.get_or_init(|| match forced_tier() {
            Some(tier) => HostKernel::for_tier(tier).unwrap_or_else(|| {
                panic!("CAMP_FORCE_TIER={}: this CPU/build cannot run that tier", tier.name())
            }),
            None => HostKernel::best_for(CpuFeatures::detect()),
        })
    }

    /// The best tier a feature set admits (ignores the environment).
    pub fn best_for(features: CpuFeatures) -> &'static HostKernel {
        #[cfg(target_arch = "x86_64")]
        {
            if features.has_avx512_tier() {
                return &AVX512;
            }
            if features.avx2 && features.fma {
                return &AVX2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        if features.neon {
            return &NEON;
        }
        let _ = features;
        &SCALAR
    }

    /// The always-available portable tier.
    pub fn scalar() -> &'static HostKernel {
        &SCALAR
    }

    /// A specific tier, if this machine can run it. This is the
    /// programmatic seam the parity proptests use to pit every
    /// available tier against scalar *within one process* (the env
    /// override can't vary per test).
    pub fn for_tier(tier: HostTier) -> Option<&'static HostKernel> {
        let f = CpuFeatures::detect();
        match tier {
            HostTier::Scalar => Some(&SCALAR),
            #[cfg(target_arch = "x86_64")]
            HostTier::Avx2 if f.avx2 && f.fma => Some(&AVX2),
            #[cfg(target_arch = "x86_64")]
            HostTier::Avx512 if f.has_avx512_tier() => Some(&AVX512),
            #[cfg(target_arch = "aarch64")]
            HostTier::Neon if f.neon => Some(&NEON),
            _ => None,
        }
    }

    /// Every tier the running CPU can execute (scalar first).
    pub fn available() -> Vec<&'static HostKernel> {
        [HostTier::Scalar, HostTier::Avx2, HostTier::Avx512, HostTier::Neon]
            .into_iter()
            .filter_map(HostKernel::for_tier)
            .collect()
    }

    /// This kernel's tier.
    pub fn tier(&self) -> HostTier {
        self.tier
    }

    /// Introspection record: tier, probed features, geometry, blocking.
    pub fn info(&self) -> KernelInfo {
        KernelInfo {
            tier: self.tier.name().to_string(),
            simd: self.tier.is_simd(),
            features: CpuFeatures::detect(),
            int_tile_i8: self.int_tile_shape(),
            int_tile_i4: self.int_tile_shape(),
            f32_tile: (self.f32_mr, self.f32_nr),
            int_blocking: int_blocking(),
            f32_blocking: f32_blocking(self.tier),
        }
    }

    /// (MR, NR) of this tier's f32 register tile.
    pub fn f32_tile_shape(&self) -> (usize, usize) {
        (self.f32_mr, self.f32_nr)
    }

    /// (MR, NR) of this tier's widened integer register tile — MR is
    /// always 4 (the packed-panel layout), NR is `int_nr`. i8 and i4
    /// share it: i4 operands are widened to i8 panels before the tile.
    pub fn int_tile_shape(&self) -> (usize, usize) {
        (4, self.int_nr)
    }

    /// Columns of the widened integer register tile (`int_nr/4`
    /// adjacent packed panels per [`HostKernel::tile_i8_wide`] call).
    pub fn int_nr(&self) -> usize {
        self.int_nr
    }

    /// Run the whole-depth integer tile kernel over one packed A/B
    /// panel pair (`kcb*4` bytes each, `kcb` a multiple of 8).
    pub fn tile_i8(&self, pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
        debug_assert_eq!(pa.len(), pb.len(), "panel depths must match");
        debug_assert_eq!(pa.len() % 32, 0, "panel depth must be a multiple of 8 k-values");
        (self.tile_i8)(pa, pb, acc)
    }

    /// Run the widened integer tile: one packed A panel against the
    /// `int_nr/4` adjacent B panels concatenated in `pb`, accumulating
    /// into `acc[q*4+i]` for panel `q`. Bit-identical to `int_nr/4`
    /// [`HostKernel::tile_i8`] calls (wrapping adds commute).
    pub fn tile_i8_wide(&self, pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]]) {
        debug_assert_eq!(acc.len(), self.int_nr, "acc must cover the full widened tile");
        debug_assert_eq!(pb.len(), (self.int_nr / 4) * pa.len(), "pb must hold int_nr/4 panels");
        debug_assert_eq!(pa.len() % 32, 0, "panel depth must be a multiple of 8 k-values");
        (self.tile_i8_wide)(pa, pb, acc)
    }

    /// Skinny-n dense kernel over raw row-major operands (`n ≤ 8`, no
    /// packing on either side): the resident-B serving path where pack
    /// traffic would dominate an n-thin GeMM.
    pub fn small_n_dense(&self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
        debug_assert!(n <= crate::loops::SMALL_N_MAX, "dense skinny-n kernel requires n <= 8");
        (self.small_n_dense)(m, n, k, a, b, c)
    }

    /// Pack a block of row-major B into 4-column panels through this
    /// tier's vectorized packer. Byte-identical to
    /// [`scalar::pack_b_block`] (proptested), so packed images remain
    /// tier-portable.
    pub fn pack_b_block(
        &self,
        buf: &mut [i8],
        b: &[i8],
        n: usize,
        k: usize,
        jc: usize,
        pc: usize,
        kcb: usize,
    ) {
        (self.pack_b)(buf, b, n, k, jc, pc, kcb)
    }

    /// Pack a block of row-major A into 4-row panels through this
    /// tier's vectorized packer; byte-identical to
    /// [`scalar::pack_a_block`].
    pub fn pack_a_block(
        &self,
        buf: &mut [i8],
        a: &[i8],
        m: usize,
        k: usize,
        ic: usize,
        pc: usize,
        kcb: usize,
    ) {
        (self.pack_a)(buf, a, m, k, ic, pc, kcb)
    }

    /// Pack 4-bit values two per byte through this tier's vectorized
    /// packer; byte-identical to [`scalar::pack_nibbles`].
    pub fn pack_nibbles(&self, vals: &[i8]) -> Vec<i8> {
        (self.pack_nibbles)(vals)
    }

    /// Skinny-m integer path (`m ≤` [`crate::loops::SMALL_M_MAX`]):
    /// consume raw A directly, B either raw row-major or as a fully
    /// pre-packed shared panel. Accumulates into `c` with wrapping
    /// adds — bit-identical to the blocked tile path.
    pub fn run_small_m(
        &self,
        m: usize,
        n: usize,
        k: usize,
        plan: &BlockPlan,
        a: &[i8],
        b: SmallB<'_>,
        c: &mut [i32],
    ) {
        small::run_small_m(self, m, n, k, plan, a, b, c)
    }

    /// Skinny-n integer path (`n ≤` [`crate::loops::SMALL_N_MAX`]):
    /// raw A against a fully pre-packed B panel image.
    pub fn run_small_n(
        &self,
        m: usize,
        n: usize,
        k: usize,
        plan: &BlockPlan,
        a: &[i8],
        bpanel: &[i8],
        c: &mut [i32],
    ) {
        small::run_small_n(self, m, n, k, plan, a, bpanel, c)
    }
}

// ---- introspection --------------------------------------------------------

/// What kernel produced a number: selected tier, probed CPU features,
/// register-tile geometry and active cache blocking. Exposed through
/// `CampEngine::kernel_info()` (and `CampBackend::kernel_info`) so
/// serving logs and `BENCH_*.json` rows can record their substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Tier name (`"scalar"`, `"avx2"`, `"neon"`, or a backend-synth
    /// name like `"sim-cycle-accurate"`).
    pub tier: String,
    /// True when the tier uses SIMD.
    pub simd: bool,
    /// The probed CPU features.
    pub features: CpuFeatures,
    /// i8 widened integer register tile (MR always 4 — the packed-panel
    /// layout — NR the tier's widened column count).
    pub int_tile_i8: (usize, usize),
    /// i4 integer register tile. i4 operands are unpacked to i8 panels,
    /// so this currently mirrors `int_tile_i8`; it is reported
    /// separately because the dtypes may diverge (e.g. a future VNNI
    /// nibble kernel) and bench consumers key on dtype.
    pub int_tile_i4: (usize, usize),
    /// f32 register tile (per tier).
    pub f32_tile: (usize, usize),
    /// Active integer-path (mc, nc, kc).
    pub int_blocking: (usize, usize, usize),
    /// Active f32-path (mc, nc, kc).
    pub f32_blocking: (usize, usize, usize),
}

impl fmt::Display for KernelInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernel (features: {}; i8 tile {}x{} i4 tile {}x{} blocking {}/{}/{}; f32 tile {}x{} blocking {}/{}/{})",
            self.tier,
            self.features.summary(),
            self.int_tile_i8.0,
            self.int_tile_i8.1,
            self.int_tile_i4.0,
            self.int_tile_i4.1,
            self.int_blocking.0,
            self.int_blocking.1,
            self.int_blocking.2,
            self.f32_tile.0,
            self.f32_tile.1,
            self.f32_blocking.0,
            self.f32_blocking.1,
            self.f32_blocking.2,
        )
    }
}

// ---- env-tunable cache blocking -------------------------------------------

/// Parse the `CAMP_MC`/`CAMP_NC`/`CAMP_KC` overrides from an
/// environment accessor. Pure so the validation is unit-testable
/// without process-global env mutation; values must be positive
/// integers (they are re-aligned to the register tile and k-step by
/// [`BlockPlan::new`], so any positive value is layout-safe).
pub(crate) fn parse_blocking_overrides(
    get: impl Fn(&str) -> Option<String>,
) -> Result<(Option<usize>, Option<usize>, Option<usize>), String> {
    let one = |name: &str| -> Result<Option<usize>, String> {
        match get(name) {
            None => Ok(None),
            Some(raw) => match raw.trim().parse::<usize>() {
                Ok(v) if v >= 1 => Ok(Some(v)),
                _ => Err(format!(
                    "{name} must be a positive integer (cache-block size in elements), got {raw:?}"
                )),
            },
        }
    };
    Ok((one("CAMP_MC")?, one("CAMP_NC")?, one("CAMP_KC")?))
}

/// The process-wide blocking overrides, read and validated once.
///
/// # Panics
/// Panics (once, at first use) on a malformed override — loud beats a
/// silently ignored tuning knob.
fn blocking_overrides() -> (Option<usize>, Option<usize>, Option<usize>) {
    static CACHE: OnceLock<(Option<usize>, Option<usize>, Option<usize>)> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_blocking_overrides(|name| std::env::var(name).ok())
            .unwrap_or_else(|e| panic!("invalid cache-blocking override: {e}"))
    })
}

fn apply_overrides(
    (mc, nc, kc): (Option<usize>, Option<usize>, Option<usize>),
    default: (usize, usize, usize),
) -> (usize, usize, usize) {
    (mc.unwrap_or(default.0), nc.unwrap_or(default.1), kc.unwrap_or(default.2))
}

/// Integer-path cache blocking: `CAMP_MC`/`CAMP_NC`/`CAMP_KC` over the
/// [`HOST_BLOCKING`] defaults. One set for **all** tiers — the integer
/// packed-panel layout is shared with the weight registry and the
/// serving session, and the layout depends on the blocking, so it must
/// not vary with the dispatched tier.
pub fn int_blocking() -> (usize, usize, usize) {
    apply_overrides(blocking_overrides(), HOST_BLOCKING)
}

/// f32-path cache blocking for a tier: the env overrides over per-tier
/// defaults sized for the tier's register tile. The f32 packed layout
/// is private to [`HostGemmF32`], so tiers are free to differ here.
pub fn f32_blocking(tier: HostTier) -> (usize, usize, usize) {
    let default = match tier {
        HostTier::Scalar => (64, 256, 256),
        HostTier::Avx2 => (96, 1024, 256),
        HostTier::Avx512 => (128, 1024, 256),
        HostTier::Neon => (96, 512, 256),
    };
    apply_overrides(blocking_overrides(), default)
}

// ---- f32 subsystem --------------------------------------------------------

/// m at or below which the f32 path skips the blocked nest entirely
/// (raw-operand fma kernel, no packing).
pub const SMALL_M_F32: usize = 4;

/// Upper bound of `mr*nr` across tiers (the macro loop's stack
/// scratch); the AVX-512 tier's 8×32 tile is the current maximum.
const MAX_F32_TILE: usize = 256;

/// Debug-build scratch-audit sentinel: a quiet-NaN bit pattern with an
/// improbable payload. Reused scratch (the context's `pa`/`pb` pack
/// buffers, the `MAX_F32_TILE` tile accumulator) is poured full of
/// this before each refill; the asserts downstream then prove the
/// packers overwrite every element of their exactly-sized block (no
/// stale panel from a previous, larger shape survives into a read) and
/// the unsafe tile kernels never touch scratch outside their `mr×nr`
/// window. Release builds compile all of it out.
const SCRATCH_SENTINEL: u32 = 0xFFC0_1DEA;

/// Fill with the sentinel (debug builds only — no-op in release).
#[inline]
fn poison_scratch(buf: &mut [f32]) {
    if cfg!(debug_assertions) {
        buf.fill(f32::from_bits(SCRATCH_SENTINEL));
    }
}

/// True when no sentinel survives, i.e. the packer wrote every element
/// of the exactly-sized block it was handed.
#[inline]
fn scratch_fully_written(buf: &[f32]) -> bool {
    buf.iter().all(|v| v.to_bits() != SCRATCH_SENTINEL)
}

/// True when every element still holds the sentinel — the tile kernel
/// stayed inside its window.
#[inline]
fn scratch_untouched(buf: &[f32]) -> bool {
    buf.iter().all(|v| v.to_bits() == SCRATCH_SENTINEL)
}

fn pack_a_f32(
    buf: &mut [f32],
    a: &[f32],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    kcb: usize,
    mr: usize,
) {
    let panel = kcb * mr;
    for (p, pbuf) in buf.chunks_exact_mut(panel).enumerate() {
        let i0 = ic + p * mr;
        for l in 0..kcb {
            let lg = pc + l;
            for (rx, out) in pbuf[l * mr..l * mr + mr].iter_mut().enumerate() {
                let i = i0 + rx;
                *out = if lg < k && i < m { a[i * k + lg] } else { 0.0 };
            }
        }
    }
}

fn pack_b_f32(
    buf: &mut [f32],
    b: &[f32],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    kcb: usize,
    nr: usize,
) {
    let panel = kcb * nr;
    for (q, pbuf) in buf.chunks_exact_mut(panel).enumerate() {
        let j0 = jc + q * nr;
        for l in 0..kcb {
            let lg = pc + l;
            for (cx, out) in pbuf[l * nr..l * nr + nr].iter_mut().enumerate() {
                let j = j0 + cx;
                *out = if lg < k && j < n { b[lg * n + j] } else { 0.0 };
            }
        }
    }
}

/// Reusable f32 GeMM context over a dispatched [`HostKernel`]: owns the
/// pack scratch so steady-state calls are allocation-free once warm.
///
/// Semantics: `C[i][j]` is one fused-multiply-add chain
/// `acc = fma(A[i][l], B[l][j], acc)` over `l` ascending from `+0.0` —
/// exactly [`crate::reference::gemm_f32_fma_ref`], and **bit-identical
/// across tiers** (the parity proptests pin this). Zero-padding is
/// exact: `fma(0, b, acc) == acc` for every finite `acc` the chain can
/// produce.
#[derive(Debug)]
pub struct HostGemmF32 {
    kernel: &'static HostKernel,
    pa: Vec<f32>,
    pb: Vec<f32>,
}

impl Default for HostGemmF32 {
    fn default() -> Self {
        HostGemmF32::new()
    }
}

impl HostGemmF32 {
    /// Context over the detected best tier.
    pub fn new() -> Self {
        HostGemmF32::with_kernel(HostKernel::detect())
    }

    /// Context pinned to a specific kernel (parity tests, benches).
    pub fn with_kernel(kernel: &'static HostKernel) -> Self {
        HostGemmF32 { kernel, pa: Vec::new(), pb: Vec::new() }
    }

    /// The dispatched kernel.
    pub fn kernel(&self) -> &'static HostKernel {
        self.kernel
    }

    /// Row-major m×n C = A·B (A m×k, B k×n row-major).
    ///
    /// # Panics
    /// Panics if slice lengths do not match the dimensions.
    pub fn gemm(&mut self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0f32; m * n];
        self.gemm_into(m, n, k, a, b, &mut c);
        c
    }

    /// [`HostGemmF32::gemm`] into a caller-owned buffer (overwritten).
    pub fn gemm_into(&mut self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert_eq!(a.len(), m * k, "A must be m×k");
        assert_eq!(b.len(), k * n, "B must be k×n");
        assert_eq!(c.len(), m * n, "C must be m×n");
        c.fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if m <= SMALL_M_F32 {
            (self.kernel.f32_small_m)(m, n, k, a, b, c);
            return;
        }
        let (mr, nr) = (self.kernel.f32_mr, self.kernel.f32_nr);
        let plan = BlockPlan::new(m, n, k, mr, nr, 1, f32_blocking(self.kernel.tier));
        if self.pb.len() < plan.nc * plan.kc {
            self.pb.resize(plan.nc * plan.kc, 0.0);
        }
        if self.pa.len() < plan.mc * plan.kc {
            self.pa.resize(plan.mc * plan.kc, 0.0);
        }
        let HostGemmF32 { kernel, pa, pb } = self;
        let mut acc = [0f32; MAX_F32_TILE];
        poison_scratch(&mut acc);
        for_each_b_block(&plan, |jc, ncb, pc, kcb| {
            poison_scratch(&mut pb[..ncb * kcb]);
            pack_b_f32(&mut pb[..ncb * kcb], b, n, k, jc, pc, kcb, nr);
            debug_assert!(
                scratch_fully_written(&pb[..ncb * kcb]),
                "pack_b_f32 left stale scratch inside its exactly-sized {ncb}x{kcb} block"
            );
            for_each_row_strip(&plan, |ic, mcb| {
                poison_scratch(&mut pa[..mcb * kcb]);
                pack_a_f32(&mut pa[..mcb * kcb], a, m, k, ic, pc, kcb, mr);
                debug_assert!(
                    scratch_fully_written(&pa[..mcb * kcb]),
                    "pack_a_f32 left stale scratch inside its exactly-sized {mcb}x{kcb} block"
                );
                for q in 0..ncb / nr {
                    let pbp = &pb[q * kcb * nr..(q + 1) * kcb * nr];
                    for p in 0..mcb / mr {
                        let pap = &pa[p * kcb * mr..(p + 1) * kcb * mr];
                        // Continue each element's fma chain from the
                        // value previous k blocks left in C (first
                        // block: the +0.0 the chain starts from), so
                        // blocked and skinny paths fold identically.
                        let i0 = ic + p * mr;
                        let j0 = jc + q * nr;
                        for r in 0..mr {
                            for s in 0..nr {
                                let (i, j) = (i0 + r, j0 + s);
                                acc[r * nr + s] = if i < m && j < n { c[i * n + j] } else { 0.0 };
                            }
                        }
                        (kernel.f32_tile)(pap, pbp, kcb, &mut acc[..mr * nr]);
                        debug_assert!(
                            scratch_untouched(&acc[mr * nr..]),
                            "f32 tile kernel wrote outside its {mr}x{nr} scratch window"
                        );
                        for r in 0..mr {
                            let i = i0 + r;
                            if i >= m {
                                break;
                            }
                            for s in 0..nr {
                                let j = j0 + s;
                                if j < n {
                                    c[i * n + j] = acc[r * nr + s];
                                }
                            }
                        }
                    }
                }
            });
        });
    }
}

/// One-shot f32 GeMM on the detected best tier; see [`HostGemmF32`].
pub fn gemm_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    HostGemmF32::new().gemm(m, n, k, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{gemm_f32_fma_ref, gemm_i32_ref, SplitMix64};

    fn f32_vec(r: &mut SplitMix64, len: usize) -> Vec<f32> {
        (0..len).map(|_| (r.next_i8(-64, 64) as f32) * 0.25).collect()
    }

    #[test]
    fn detect_returns_a_usable_tier() {
        let hk = HostKernel::detect();
        // scalar must always be reachable, and the detected tier must
        // be among the available set
        assert!(HostKernel::available().iter().any(|k| k.tier() == hk.tier()));
        assert_eq!(HostKernel::scalar().tier(), HostTier::Scalar);
        assert!(HostKernel::for_tier(HostTier::Scalar).is_some());
    }

    #[test]
    fn kernel_info_reports_tier_and_blocking() {
        let info = HostKernel::scalar().info();
        assert_eq!(info.tier, "scalar");
        assert!(!info.simd);
        assert_eq!(info.int_tile_i8, (4, 4));
        assert_eq!(info.int_tile_i4, (4, 4));
        assert_eq!(info.int_blocking, int_blocking());
        let text = info.to_string();
        assert!(text.contains("scalar"), "{text}");
        assert!(text.contains("blocking"), "{text}");
        // widened tiles are per tier, but MR and the panel layout never
        // change: every tier's tile is 4×(multiple of 4)
        for hk in HostKernel::available() {
            let (mr, nr) = hk.int_tile_shape();
            assert_eq!(mr, 4, "{:?}", hk.tier());
            assert_eq!(nr % 4, 0, "{:?}", hk.tier());
            assert_eq!(hk.info().int_tile_i8, (mr, nr));
        }
    }

    #[test]
    fn forced_tier_parser_validates() {
        assert_eq!(parse_forced_tier(None).unwrap(), None);
        assert_eq!(parse_forced_tier(Some("".into())).unwrap(), None);
        assert_eq!(parse_forced_tier(Some(" scalar ".into())).unwrap(), Some(HostTier::Scalar));
        assert_eq!(parse_forced_tier(Some("avx2".into())).unwrap(), Some(HostTier::Avx2));
        assert_eq!(parse_forced_tier(Some("avx512".into())).unwrap(), Some(HostTier::Avx512));
        assert_eq!(parse_forced_tier(Some("neon".into())).unwrap(), Some(HostTier::Neon));
        for bad in ["AVX2", "sse", "1", "scalar,avx2"] {
            let err = parse_forced_tier(Some(bad.to_string())).unwrap_err();
            assert!(err.contains("CAMP_FORCE_TIER"), "{err}");
        }
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(HostTier::Scalar.name(), "scalar");
        assert_eq!(HostTier::Avx2.name(), "avx2");
        assert_eq!(HostTier::Avx512.name(), "avx512");
        assert_eq!(HostTier::Neon.name(), "neon");
        assert!(HostTier::Avx2.is_simd());
        assert!(HostTier::Avx512.is_simd());
        assert!(!HostTier::Scalar.is_simd());
    }

    #[test]
    fn blocking_override_parser_validates() {
        let none = parse_blocking_overrides(|_| None).unwrap();
        assert_eq!(none, (None, None, None));
        let all = parse_blocking_overrides(|name| match name {
            "CAMP_MC" => Some("64".into()),
            "CAMP_NC" => Some(" 128 ".into()),
            "CAMP_KC" => Some("512".into()),
            _ => None,
        })
        .unwrap();
        assert_eq!(all, (Some(64), Some(128), Some(512)));
        for bad in ["0", "-3", "huge", "", "12.5"] {
            let err = parse_blocking_overrides(|name| (name == "CAMP_KC").then(|| bad.to_string()))
                .unwrap_err();
            assert!(err.contains("CAMP_KC"), "{err}");
        }
        // overrides apply over any default
        assert_eq!(apply_overrides((Some(8), None, Some(32)), (1, 2, 3)), (8, 2, 32));
    }

    #[test]
    fn f32_blocking_is_per_tier_but_env_shared() {
        assert_ne!(f32_blocking(HostTier::Scalar), f32_blocking(HostTier::Avx2));
        // the int path is one layout for all tiers
        let info_a = HostKernel::scalar().info();
        assert_eq!(info_a.int_blocking, int_blocking());
    }

    #[test]
    fn f32_gemm_matches_the_fma_reference_bitwise() {
        let mut r = SplitMix64::new(11);
        let mut ctx = HostGemmF32::new();
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (4, 16, 9), (13, 21, 40), (32, 48, 65)] {
            let a = f32_vec(&mut r, m * k);
            let b = f32_vec(&mut r, k * n);
            let c = ctx.gemm(m, n, k, &a, &b);
            let want = gemm_f32_fma_ref(m, n, k, &a, &b);
            assert!(
                c.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{m}x{n}x{k} diverged from the fma reference"
            );
        }
    }

    #[test]
    fn f32_zero_dims_are_degenerate() {
        let mut ctx = HostGemmF32::new();
        assert!(ctx.gemm(0, 4, 4, &[], &f32_vec(&mut SplitMix64::new(1), 16)).is_empty());
        let c = ctx.gemm(2, 2, 0, &[], &[]);
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    fn f32_context_is_allocation_free_when_warm() {
        // same shape twice: the second call must not regrow scratch
        let mut r = SplitMix64::new(5);
        let (m, n, k) = (24, 40, 33);
        let a = f32_vec(&mut r, m * k);
        let b = f32_vec(&mut r, k * n);
        let mut ctx = HostGemmF32::new();
        let first = ctx.gemm(m, n, k, &a, &b);
        let (cap_a, cap_b) = (ctx.pa.capacity(), ctx.pb.capacity());
        let second = ctx.gemm(m, n, k, &a, &b);
        assert_eq!(first, second);
        assert_eq!((ctx.pa.capacity(), ctx.pb.capacity()), (cap_a, cap_b));
    }

    #[test]
    fn warm_scratch_never_leaks_into_a_smaller_problem() {
        // A big blocked shape grows `pa`/`pb` to their high-water mark
        // and fills them with nonzero panels. Every later, smaller
        // problem on the warm context — one blocked, one skinny-m —
        // must be bit-identical to a fresh context (and the fma
        // reference): the packers own exactly-sized sub-slices, so no
        // stale panel tail from the big shape can reach a read. The
        // debug-build sentinel audit in `gemm_into` checks the same
        // property per block; this pins it end-to-end in any build.
        for hk in HostKernel::available() {
            let mut r = SplitMix64::new(0x5C4A_7C11);
            let mut warm = HostGemmF32::with_kernel(hk);
            let (bm, bn, bk) = (96, 80, 70);
            let big_a = f32_vec(&mut r, bm * bk);
            let big_b = f32_vec(&mut r, bk * bn);
            warm.gemm(bm, bn, bk, &big_a, &big_b);
            for (m, n, k) in [(12, 9, 5), (2, 17, 7)] {
                let a = f32_vec(&mut r, m * k);
                let b = f32_vec(&mut r, k * n);
                let from_warm = warm.gemm(m, n, k, &a, &b);
                let from_fresh = HostGemmF32::with_kernel(hk).gemm(m, n, k, &a, &b);
                assert_eq!(from_warm, from_fresh, "{m}x{n}x{k} on {}", hk.tier().name());
                assert_eq!(from_warm, gemm_f32_fma_ref(m, n, k, &a, &b));
            }
        }
    }

    #[test]
    fn every_available_tier_matches_scalar_int_semantics() {
        // quick deterministic cross-check (the proptest suite does the
        // heavy lifting): every tier's tile kernel equals the camp
        // reference on a packed panel pair
        let mut r = SplitMix64::new(77);
        let kcb = 64;
        let pa = r.i8_vec(kcb * 4, -128, 127);
        let pb = r.i8_vec(kcb * 4, -128, 127);
        let mut want = [[0i32; 4]; 4];
        HostKernel::scalar().tile_i8(&pa, &pb, &mut want);
        for hk in HostKernel::available() {
            let mut got = [[0i32; 4]; 4];
            hk.tile_i8(&pa, &pb, &mut got);
            assert_eq!(got, want, "tier {:?}", hk.tier());
        }
        // and the scalar tile is the 4x4 gemm it claims to be
        let want_ref = gemm_i32_ref(4, 4, kcb, &unpack_a(&pa, kcb), &unpack_b(&pb, kcb));
        let flat: Vec<i32> = want.iter().flatten().copied().collect();
        assert_eq!(flat, want_ref);
    }

    fn unpack_a(pa: &[i8], kcb: usize) -> Vec<i8> {
        let mut a = vec![0i8; 4 * kcb];
        for l in 0..kcb {
            for i in 0..4 {
                a[i * kcb + l] = pa[l * 4 + i];
            }
        }
        a
    }

    fn unpack_b(pb: &[i8], kcb: usize) -> Vec<i8> {
        let mut b = vec![0i8; kcb * 4];
        for l in 0..kcb {
            b[l * 4..l * 4 + 4].copy_from_slice(&pb[l * 4..l * 4 + 4]);
        }
        b
    }
}
