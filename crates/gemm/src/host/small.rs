//! Pire-style skinny-GEMM fast paths (`run_small_m` / `run_small_n`).
//!
//! Serving batches are dominated by GEMV-shaped problems — decode
//! steps with a handful of rows, narrow projection heads with a
//! handful of columns. For those, the full Goto nest is mostly
//! overhead: A-packing traffic and a padded 4×4 register tile for at
//! most a couple of live rows. These paths consume raw A directly
//! (no A packing at all) and reduce the kernel to either a dense
//! row-sweep ([`super::HostKernel`]'s `small_m_dense`) or the
//! 4-column panel matrix-vector primitive (`panel_mav`) over a packed
//! B image.
//!
//! Bit-identity with the blocked tile path is structural: every
//! product is exact and every accumulation wraps in i32, so summation
//! order cannot change the result. The selection predicate lives in
//! [`crate::loops::small_path`] so the direct, batched and session
//! paths all pick identically.

use crate::batch::packed_b_offset;
use crate::loops::{for_each_b_block, BlockPlan};

use super::HostKernel;

/// How B arrives at a skinny-m call site.
#[derive(Debug, Clone, Copy)]
pub enum SmallB<'a> {
    /// Raw row-major k×n operand.
    Dense(&'a [i8]),
    /// Fully pre-packed B image (weight-registry handle or a batch's
    /// shared panel), laid out by [`crate::weights::prepack_b`] /
    /// [`packed_b_offset`].
    Panel(&'a [i8]),
}

/// Skinny-m dispatch: a raw-B problem takes the dense row-sweep kernel
/// (B streams through cache once, no packing anywhere); a pre-packed B
/// reuses the existing panel image via the panel walk.
pub(super) fn run_small_m(
    hk: &HostKernel,
    m: usize,
    n: usize,
    k: usize,
    plan: &BlockPlan,
    a: &[i8],
    b: SmallB<'_>,
    c: &mut [i32],
) {
    match b {
        SmallB::Dense(b) => (hk.small_m_dense)(m, n, k, a, b, c),
        SmallB::Panel(bpanel) => run_panel(hk, m, n, k, plan, a, bpanel, c),
    }
}

/// Skinny-n path: raw A rows against a fully pre-packed B image. The
/// whole C row block stays register/L1-resident, so the nest collapses
/// to a panel walk.
pub(super) fn run_small_n(
    hk: &HostKernel,
    m: usize,
    n: usize,
    k: usize,
    plan: &BlockPlan,
    a: &[i8],
    bpanel: &[i8],
    c: &mut [i32],
) {
    run_panel(hk, m, n, k, plan, a, bpanel, c)
}

/// Shared engine of both skinny paths: walk the canonical B-block
/// traversal ([`for_each_b_block`] — the same order `prepack_b` laid
/// the image out in), and for every 4-column panel run each raw A row
/// through the tier's `panel_mav`, folding the 4 wrapping sums into C.
fn run_panel(
    hk: &HostKernel,
    m: usize,
    n: usize,
    k: usize,
    plan: &BlockPlan,
    a: &[i8],
    bpanel: &[i8],
    c: &mut [i32],
) {
    // One 4-lane tile scratch reused for the entire walk. `panel_mav`
    // *accumulates* into it, so the fold below must re-zero it after
    // every use — the debug assert pins that discipline (a stale lane
    // would silently corrupt the next row's sums).
    let mut acc = [0i32; 4];
    for_each_b_block(plan, |jc, ncb, pc, kcb| {
        let off = packed_b_offset(plan.kp, jc, ncb, pc);
        // pc < k always: kp < k + k_step and every block is at least
        // one k-step deep, so the raw A row slice is never empty
        let kreal = kcb.min(k - pc);
        for q in 0..ncb / 4 {
            let j0 = jc + q * 4;
            if j0 >= n {
                break; // rest of this block is column padding
            }
            let width = 4.min(n - j0);
            let panel = &bpanel[off + q * kcb * 4..off + (q + 1) * kcb * 4];
            for i in 0..m {
                let a_row = &a[i * k + pc..i * k + pc + kreal];
                debug_assert!(
                    acc == [0i32; 4],
                    "skinny-path tile scratch must be zeroed between reuses"
                );
                (hk.panel_mav)(&mut acc, a_row, panel);
                let crow = &mut c[i * n + j0..i * n + j0 + width];
                for (cv, &v) in crow.iter_mut().zip(&acc) {
                    *cv = cv.wrapping_add(v);
                }
                acc = [0i32; 4];
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::{small_path, SmallPath};
    use crate::reference::{gemm_i32_ref, SplitMix64};
    use crate::weights::{host_block_plan, prepack_b};

    fn packed_b(n: usize, k: usize, k_step: usize, b: &[i8]) -> (BlockPlan, Vec<i8>) {
        let plan = host_block_plan(4, n, k, k_step);
        let mut buf = vec![0i8; plan.np * plan.kp];
        prepack_b(&mut buf, b, n, k, &plan);
        (plan, buf)
    }

    #[test]
    fn small_m_dense_and_panel_agree_with_reference() {
        let mut r = SplitMix64::new(40);
        let hk = HostKernel::detect();
        for (m, n, k) in [(1, 64, 33), (2, 7, 16), (5, 100, 70), (8, 3, 5)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let want = gemm_i32_ref(m, n, k, &a, &b);
            let (plan, bimg) = packed_b(n, k, 16, &b);
            let mut dense = vec![0i32; m * n];
            run_small_m(hk, m, n, k, &plan, &a, SmallB::Dense(&b), &mut dense);
            assert_eq!(dense, want, "dense {m}x{n}x{k}");
            let mut panel = vec![0i32; m * n];
            run_small_m(hk, m, n, k, &plan, &a, SmallB::Panel(&bimg), &mut panel);
            assert_eq!(panel, want, "panel {m}x{n}x{k}");
        }
    }

    #[test]
    fn small_n_agrees_with_reference() {
        let mut r = SplitMix64::new(41);
        let hk = HostKernel::detect();
        for (m, n, k) in [(64, 1, 33), (17, 4, 16), (100, 7, 70), (33, 8, 200)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let want = gemm_i32_ref(m, n, k, &a, &b);
            let (plan, bimg) = packed_b(n, k, 16, &b);
            let mut c = vec![0i32; m * n];
            run_small_n(hk, m, n, k, &plan, &a, &bimg, &mut c);
            assert_eq!(c, want, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn small_paths_accumulate_into_existing_c() {
        // same contract as the blocked tile path: C += A·B
        let mut r = SplitMix64::new(42);
        let hk = HostKernel::detect();
        let (m, n, k) = (3, 9, 24);
        let a = r.i8_vec(m * k, -16, 16);
        let b = r.i8_vec(k * n, -16, 16);
        let want: Vec<i32> = gemm_i32_ref(m, n, k, &a, &b).iter().map(|v| v + 100).collect();
        let (plan, bimg) = packed_b(n, k, 16, &b);
        let mut c = vec![100i32; m * n];
        run_small_m(hk, m, n, k, &plan, &a, SmallB::Panel(&bimg), &mut c);
        assert_eq!(c, want);
    }

    #[test]
    fn reused_tile_scratch_is_zeroed_between_panel_walks() {
        // `run_panel` reuses one 4-lane tile scratch across every
        // (block, panel, row) visit of the walk; a single stale lane
        // would shift every later sum by a deterministic garbage
        // term. Deep-k shapes that span several k-blocks and dozens
        // of panels, on every available tier, pin the re-zero
        // discipline end to end (debug builds also assert it before
        // each `panel_mav` call).
        let mut r = SplitMix64::new(44);
        for hk in HostKernel::available() {
            for (m, n, k) in [(3, 37, 300), (70, 6, 250)] {
                let a = r.i8_vec(m * k, -128, 127);
                let b = r.i8_vec(k * n, -128, 127);
                let want = gemm_i32_ref(m, n, k, &a, &b);
                let (plan, bimg) = packed_b(n, k, 16, &b);
                let mut c = vec![0i32; m * n];
                match small_path(m, n) {
                    Some(SmallPath::SmallM) => {
                        run_small_m(hk, m, n, k, &plan, &a, SmallB::Panel(&bimg), &mut c)
                    }
                    Some(SmallPath::SmallN) => run_small_n(hk, m, n, k, &plan, &a, &bimg, &mut c),
                    None => unreachable!("shapes above are skinny by construction"),
                }
                assert_eq!(c, want, "{m}x{n}x{k} on {}", hk.tier().name());
            }
        }
    }

    #[test]
    fn chooser_and_paths_cover_i4_k_step_too() {
        let mut r = SplitMix64::new(43);
        let hk = HostKernel::detect();
        let (m, n, k) = (2, 50, 40);
        assert_eq!(small_path(m, n), Some(SmallPath::SmallM));
        let a = r.i8_vec(m * k, -8, 7);
        let b = r.i8_vec(k * n, -8, 7);
        let want = gemm_i32_ref(m, n, k, &a, &b);
        let (plan, bimg) = packed_b(n, k, 32, &b);
        let mut c = vec![0i32; m * n];
        run_small_m(hk, m, n, k, &plan, &a, SmallB::Panel(&bimg), &mut c);
        assert_eq!(c, want);
    }
}
