//! x86_64 AVX2 tier.
//!
//! Integer kernels widen i8→i16 with `vpshufb`-interleaved panels and
//! accumulate through `vpmaddwd` (exact: every i8×i8 product fits i16
//! headroom, every pairwise sum fits i32) into wrapping `vpaddd`
//! accumulators — so the tier is bit-identical to the scalar reference
//! by construction. f32 kernels use `vfmadd` with one accumulator
//! register per output chunk, realizing the same per-element fma chain
//! (`l` ascending) as [`super::scalar`], hence the same bits.
//!
//! Every `_impl` below is an `unsafe fn` with
//! `#[target_feature(enable = ...)]` and **no inner unsafe blocks**;
//! the public wrappers hold the single `unsafe` call, guarded by a
//! debug assertion that dispatch only routed here on a capable CPU.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Per-128-lane `vpshufb` mask turning a packed B chunk of 8 k-values
/// (`b[l*4+j]`, 32 bytes) into (l, l+1) pair-interleaved bytes, ready
/// for i16 widening and `vpmaddwd`: lane 0 becomes pairs (l0,l1) then
/// (l2,l3) for j=0..3, lane 1 pairs (l4,l5) then (l6,l7).
const B_PAIR_SHUF: [i8; 32] = [
    0, 4, 1, 5, 2, 6, 3, 7, 8, 12, 9, 13, 10, 14, 11, 15, //
    0, 4, 1, 5, 2, 6, 3, 7, 8, 12, 9, 13, 10, 14, 11, 15,
];

/// Per-row `vpshufb` masks broadcasting row `i` of a packed A chunk as
/// (l, l+1) pairs aligned with [`B_PAIR_SHUF`]'s B layout.
const fn a_row_shuf(i: i8) -> [i8; 32] {
    let mut m = [0i8; 32];
    let mut lane = 0;
    while lane < 2 {
        let base = lane * 16;
        let mut t = 0;
        while t < 4 {
            m[base + 2 * t] = i;
            m[base + 2 * t + 1] = 4 + i;
            m[base + 8 + 2 * t] = 8 + i;
            m[base + 8 + 2 * t + 1] = 12 + i;
            t += 1;
        }
        lane += 1;
    }
    m
}

const A_ROW_SHUF: [[i8; 32]; 4] = [a_row_shuf(0), a_row_shuf(1), a_row_shuf(2), a_row_shuf(3)];

/// 8-byte `vpshufb` mask pairing two consecutive panel k-values per
/// column for [`panel_mav`]; high half zeroed (indices with the sign
/// bit set produce 0).
const PANEL_PAIR_SHUF: [i8; 16] = [
    0, 4, 1, 5, 2, 6, 3, 7, //
    -128, -128, -128, -128, -128, -128, -128, -128,
];

/// `vpshufb` mask spreading 8 raw A bytes (broadcast into both 128-bit
/// lanes) into the (l, l+1) pair layout of [`B_PAIR_SHUF`]: lane 0
/// carries (a0,a1)×4 then (a2,a3)×4, lane 1 (a4,a5)×4 then (a6,a7)×4 —
/// so one `vpmaddwd` against a shuffled 8-k panel chunk covers all four
/// columns of 8 k-values.
const A_PAIR_SHUF: [i8; 32] = [
    0, 1, 0, 1, 0, 1, 0, 1, 2, 3, 2, 3, 2, 3, 2, 3, //
    4, 5, 4, 5, 4, 5, 4, 5, 6, 7, 6, 7, 6, 7, 6, 7,
];

// SAFETY: requires AVX2 (the `target_feature` precondition). The
// unaligned loads stay in bounds because `iters` is derived from
// `pa.len()` and the packing contract gives `pb` the same whole-32-byte
// chunk count; stores land in the stack-local `out` array.
#[target_feature(enable = "avx2")]
unsafe fn tile_i8_impl(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    let bshuf = _mm256_loadu_si256(B_PAIR_SHUF.as_ptr() as *const __m256i);
    let ashuf = [
        _mm256_loadu_si256(A_ROW_SHUF[0].as_ptr() as *const __m256i),
        _mm256_loadu_si256(A_ROW_SHUF[1].as_ptr() as *const __m256i),
        _mm256_loadu_si256(A_ROW_SHUF[2].as_ptr() as *const __m256i),
        _mm256_loadu_si256(A_ROW_SHUF[3].as_ptr() as *const __m256i),
    ];
    let mut vacc = [_mm256_setzero_si256(); 4];
    // 8 k-values (32 packed bytes) per iteration; panel depth is a
    // multiple of 8 k-values (dispatch asserts it)
    let iters = pa.len() / 32;
    for t in 0..iters {
        let ap = _mm256_loadu_si256(pa.as_ptr().add(t * 32) as *const __m256i);
        let bp = _mm256_loadu_si256(pb.as_ptr().add(t * 32) as *const __m256i);
        let bs = _mm256_shuffle_epi8(bp, bshuf);
        let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bs));
        let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(bs));
        for i in 0..4 {
            let asel = _mm256_shuffle_epi8(ap, ashuf[i]);
            let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(asel));
            let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(asel));
            // vpmaddwd: exact pairwise i16 dot products in i32 lanes
            let prod =
                _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo), _mm256_madd_epi16(a_hi, b_hi));
            vacc[i] = _mm256_add_epi32(vacc[i], prod);
        }
    }
    for (row, v) in acc.iter_mut().zip(vacc) {
        // lane t<4 holds j_t over (l0,l1,l4,l5); lane t+4 over
        // (l2,l3,l6,l7) — fold halves, then fold into the caller tile
        let folded = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let mut out = [0i32; 4];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, folded);
        for (c, o) in row.iter_mut().zip(out) {
            *c = c.wrapping_add(o);
        }
    }
}

/// See [`super::scalar::tile_i8`]; bit-identical, AVX2-accelerated.
pub fn tile_i8(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 kernel dispatched without avx2");
    // SAFETY: the HostKernel dispatch table only routes here after
    // runtime AVX2 detection (debug-asserted above), and the packer
    // emits `pa`/`pb` as whole 32-byte chunks — tile_i8_impl's two
    // preconditions.
    unsafe { tile_i8_impl(pa, pb, acc) }
}

// SAFETY: requires AVX2. Loads stay in bounds because `iters` derives
// from `pa.len()` and the wrapper asserts `pb` holds exactly two panels
// of that depth; stores land in stack-local arrays.
#[target_feature(enable = "avx2")]
unsafe fn tile_i8_wide_impl(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]]) {
    let panel = pa.len();
    let bshuf = _mm256_loadu_si256(B_PAIR_SHUF.as_ptr() as *const __m256i);
    let ashuf = [
        _mm256_loadu_si256(A_ROW_SHUF[0].as_ptr() as *const __m256i),
        _mm256_loadu_si256(A_ROW_SHUF[1].as_ptr() as *const __m256i),
        _mm256_loadu_si256(A_ROW_SHUF[2].as_ptr() as *const __m256i),
        _mm256_loadu_si256(A_ROW_SHUF[3].as_ptr() as *const __m256i),
    ];
    // 4×8 register tile: one A panel × two adjacent B panels, all 8
    // accumulators held across the depth loop — the A-side shuffles and
    // widenings are amortized over twice the columns of [`tile_i8`].
    let mut vacc = [[_mm256_setzero_si256(); 2]; 4];
    let iters = panel / 32;
    for t in 0..iters {
        let ap = _mm256_loadu_si256(pa.as_ptr().add(t * 32) as *const __m256i);
        let mut blo = [_mm256_setzero_si256(); 2];
        let mut bhi = [_mm256_setzero_si256(); 2];
        for q in 0..2 {
            let bp = _mm256_loadu_si256(pb.as_ptr().add(q * panel + t * 32) as *const __m256i);
            let bs = _mm256_shuffle_epi8(bp, bshuf);
            blo[q] = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bs));
            bhi[q] = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(bs));
        }
        for i in 0..4 {
            let asel = _mm256_shuffle_epi8(ap, ashuf[i]);
            let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(asel));
            let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(asel));
            for q in 0..2 {
                let prod = _mm256_add_epi32(
                    _mm256_madd_epi16(a_lo, blo[q]),
                    _mm256_madd_epi16(a_hi, bhi[q]),
                );
                vacc[i][q] = _mm256_add_epi32(vacc[i][q], prod);
            }
        }
    }
    for (i, rowacc) in vacc.iter().enumerate() {
        for (q, &v) in rowacc.iter().enumerate() {
            let folded = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
            let mut out = [0i32; 4];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, folded);
            for (c, o) in acc[q * 4 + i].iter_mut().zip(out) {
                *c = c.wrapping_add(o);
            }
        }
    }
}

/// Widened 4×8 integer tile (see [`super::scalar::tile_i8_wide`]): one
/// packed A panel against two adjacent B panels per call; bit-identical
/// to two [`tile_i8`] calls (wrapping adds commute).
pub fn tile_i8_wide(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]]) {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 kernel dispatched without avx2");
    debug_assert_eq!(acc.len(), 8, "avx2 wide tile is 4x8 (two panels)");
    debug_assert_eq!(pb.len(), 2 * pa.len(), "pb must hold two panels of pa's depth");
    debug_assert_eq!(pa.len() % 32, 0, "panel depth must be a multiple of 8 k-values");
    // SAFETY: AVX2 detection gates dispatch (debug-asserted above);
    // the panel-shape preconditions the impl's bounds reasoning needs
    // are debug-asserted here and guaranteed by the engine's grouping
    // loop, which only forms whole two-panel groups.
    unsafe { tile_i8_wide_impl(pa, pb, acc) }
}

// SAFETY: requires AVX2. Every pointer offset is guarded by the loop
// bounds: C rows via `j + 16 <= n`, B rows via the same guard (for
// `l < k`, `l*n + j + 16 <= k*n` follows from `j + 16 <= n`); the
// scalar remainder uses safe indexing.
#[target_feature(enable = "avx2")]
unsafe fn small_m_dense_impl(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        // 16 output columns per step, i32 accumulators held across the
        // whole k loop (B rows stream through cache once per A row)
        while j + 16 <= n {
            let cptr = c.as_mut_ptr().add(i * n + j);
            let mut acc0 = _mm256_loadu_si256(cptr as *const __m256i);
            let mut acc1 = _mm256_loadu_si256(cptr.add(8) as *const __m256i);
            for (l, &av) in arow.iter().enumerate() {
                let a16 = _mm256_set1_epi16(av as i16);
                let b8 = _mm_loadu_si128(b.as_ptr().add(l * n + j) as *const __m128i);
                let b16 = _mm256_cvtepi8_epi16(b8);
                // i8×i8 products fit i16 exactly (|p| ≤ 16384)
                let p16 = _mm256_mullo_epi16(a16, b16);
                let lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(p16));
                let hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(p16));
                acc0 = _mm256_add_epi32(acc0, lo);
                acc1 = _mm256_add_epi32(acc1, hi);
            }
            _mm256_storeu_si256(cptr as *mut __m256i, acc0);
            _mm256_storeu_si256(cptr.add(8) as *mut __m256i, acc1);
            j += 16;
        }
        for j in j..n {
            let mut acc = c[i * n + j];
            for (l, &av) in arow.iter().enumerate() {
                acc = acc.wrapping_add((av as i32).wrapping_mul(b[l * n + j] as i32));
            }
            c[i * n + j] = acc;
        }
    }
}

/// See [`super::scalar::small_m_dense`]; bit-identical.
pub fn small_m_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 kernel dispatched without avx2");
    // SAFETY: AVX2 is runtime-detected before dispatch reaches this
    // tier (debug-asserted above); slice shapes are the m×k / k×n / m×n
    // engine contract the impl's bounds reasoning relies on.
    unsafe { small_m_dense_impl(m, n, k, a, b, c) }
}

// SAFETY: requires AVX2, and `panel` must hold 4 columns per k-value
// of `a_row` (the weight-panel layout): the 32-byte load at `l*4` needs
// `l + 8 <= a_row.len()` (which also bounds the 8-byte A load), the
// 8-byte load needs `l + 2 <=`, and each loop guard enforces its own.
#[target_feature(enable = "avx2")]
unsafe fn panel_mav_impl(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    let kreal = a_row.len();
    let mut l = 0;
    // main loop: 8 k-values per iteration — one 32-byte panel load and
    // one 8-byte A load per 32 MACs, the same shuffle/widen/vpmaddwd
    // pipeline as the blocked tile kernel (a single A "row" of it)
    let mut vacc8 = _mm256_setzero_si256();
    if kreal >= 8 {
        let bshuf = _mm256_loadu_si256(B_PAIR_SHUF.as_ptr() as *const __m256i);
        let apairshuf = _mm256_loadu_si256(A_PAIR_SHUF.as_ptr() as *const __m256i);
        while l + 8 <= kreal {
            let bp = _mm256_loadu_si256(panel.as_ptr().add(l * 4) as *const __m256i);
            let bs = _mm256_shuffle_epi8(bp, bshuf);
            let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bs));
            let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(bs));
            let a8 = _mm_loadl_epi64(a_row.as_ptr().add(l) as *const __m128i);
            let asel = _mm256_shuffle_epi8(_mm256_broadcastsi128_si256(a8), apairshuf);
            let a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(asel));
            let a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(asel));
            let prod =
                _mm256_add_epi32(_mm256_madd_epi16(a_lo, b_lo), _mm256_madd_epi16(a_hi, b_hi));
            vacc8 = _mm256_add_epi32(vacc8, prod);
            l += 8;
        }
    }
    // lanes 0..3 hold j0..3 over one k subset, lanes 4..7 the rest
    let folded = _mm_add_epi32(_mm256_castsi256_si128(vacc8), _mm256_extracti128_si256::<1>(vacc8));
    let mut vacc = _mm_add_epi32(_mm_loadu_si128(acc.as_ptr() as *const __m128i), folded);
    let shuf = _mm_loadu_si128(PANEL_PAIR_SHUF.as_ptr() as *const __m128i);
    while l + 2 <= kreal {
        // 2 k-values × 4 columns = 8 panel bytes
        let b8 = _mm_loadl_epi64(panel.as_ptr().add(l * 4) as *const __m128i);
        let b16 = _mm_cvtepi8_epi16(_mm_shuffle_epi8(b8, shuf));
        let a0 = a_row[l] as i16;
        let a1 = a_row[l + 1] as i16;
        let apair = _mm_set1_epi32(((a1 as i32) << 16) | (a0 as u16 as i32));
        vacc = _mm_add_epi32(vacc, _mm_madd_epi16(b16, apair));
        l += 2;
    }
    _mm_storeu_si128(acc.as_mut_ptr() as *mut __m128i, vacc);
    if l < kreal {
        let a = a_row[l] as i32;
        for (j, v) in acc.iter_mut().enumerate() {
            *v = v.wrapping_add(a.wrapping_mul(panel[l * 4 + j] as i32));
        }
    }
}

/// See [`super::scalar::panel_mav`]; bit-identical.
pub fn panel_mav(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 kernel dispatched without avx2");
    // SAFETY: AVX2 detection gates dispatch (debug-asserted above);
    // the registered-weight panel stores 4 columns per k-value, the
    // impl's only layout precondition.
    unsafe { panel_mav_impl(acc, a_row, panel) }
}

// SAFETY: requires AVX2+FMA, `pa.len() >= kcb*4`, `pb.len() >= kcb*16`
// and `acc.len() >= 64` — every load/store offset below is bounded by
// those three lengths (the wrapper debug-asserts them).
#[target_feature(enable = "avx2,fma")]
unsafe fn f32_tile_impl(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    // 4×16 register tile: two 8-wide accumulators per row, held in
    // registers across the whole depth block
    let mut lo = [_mm256_setzero_ps(); 4];
    let mut hi = [_mm256_setzero_ps(); 4];
    for i in 0..4 {
        lo[i] = _mm256_loadu_ps(acc.as_ptr().add(i * 16));
        hi[i] = _mm256_loadu_ps(acc.as_ptr().add(i * 16 + 8));
    }
    for l in 0..kcb {
        let b_lo = _mm256_loadu_ps(pb.as_ptr().add(l * 16));
        let b_hi = _mm256_loadu_ps(pb.as_ptr().add(l * 16 + 8));
        for i in 0..4 {
            let a = _mm256_set1_ps(pa[l * 4 + i]);
            lo[i] = _mm256_fmadd_ps(a, b_lo, lo[i]);
            hi[i] = _mm256_fmadd_ps(a, b_hi, hi[i]);
        }
    }
    for i in 0..4 {
        _mm256_storeu_ps(acc.as_mut_ptr().add(i * 16), lo[i]);
        _mm256_storeu_ps(acc.as_mut_ptr().add(i * 16 + 8), hi[i]);
    }
}

/// 4×16 f32 fma register tile; same per-element fma chain as scalar.
pub fn f32_tile(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    debug_assert!(pa.len() >= kcb * 4 && pb.len() >= kcb * 16 && acc.len() >= 64);
    debug_assert!(
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        "avx2+fma kernel dispatched without avx2+fma"
    );
    // SAFETY: AVX2+FMA are runtime-detected before dispatch (asserted
    // above), and the length preconditions are debug-asserted; release
    // callers are the dispatch table, which packs to exactly these
    // shapes.
    unsafe { f32_tile_impl(pa, pb, kcb, acc) }
}

// SAFETY: requires AVX2+FMA. Pointer offsets are bounded the same way
// as [`small_m_dense_impl`]: `j + 8 <= n` covers both the C-row store
// and the B-row loads; the remainder path is safe indexing.
#[target_feature(enable = "avx2,fma")]
unsafe fn f32_small_m_impl(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 8 <= n {
            let cptr = c.as_mut_ptr().add(i * n + j);
            let mut acc = _mm256_loadu_ps(cptr);
            for (l, &av) in arow.iter().enumerate() {
                let bv = _mm256_loadu_ps(b.as_ptr().add(l * n + j));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(av), bv, acc);
            }
            _mm256_storeu_ps(cptr, acc);
            j += 8;
        }
        for j in j..n {
            let mut acc = c[i * n + j];
            for (l, &av) in arow.iter().enumerate() {
                acc = av.mul_add(b[l * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
}

/// See [`super::scalar::f32_small_m`]; bit-identical (fma chain).
pub fn f32_small_m(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        "avx2+fma kernel dispatched without avx2+fma"
    );
    // SAFETY: AVX2+FMA gate dispatch to this tier (debug-asserted
    // above); slice shapes are the m×k / k×n / m×n engine contract.
    unsafe { f32_small_m_impl(m, n, k, a, b, c) }
}

// SAFETY: requires AVX2 and n ≤ 8. The 8-byte B loads at rows `l` and
// `l+1` are guarded by `(l + 1) * n + 8 <= b.len()`; everything past
// that guard uses safe indexing. C stores go through a bounded stack
// array fold, never a vector store.
#[target_feature(enable = "avx2")]
unsafe fn small_n_dense_impl(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    let blen = b.len();
    // one k-pair step shared by every row group: interleave B rows l
    // and l+1 ((b[l][j], b[l+1][j]) pairs), widen, vpmaddwd against the
    // broadcast (a[l], a[l+1]) pair — 8 columns per instruction with
    // the ≤8-wide C row held in one register across the whole k loop
    let mut i = 0;
    while i < m {
        let rows = 4.min(m - i);
        let mut vacc = [_mm256_setzero_si256(); 4];
        let mut l = 0;
        while l + 2 <= k && (l + 1) * n + 8 <= blen {
            let b0 = _mm_loadl_epi64(b.as_ptr().add(l * n) as *const __m128i);
            let b1 = _mm_loadl_epi64(b.as_ptr().add((l + 1) * n) as *const __m128i);
            let b16 = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(b0, b1));
            for (r, v) in vacc.iter_mut().enumerate().take(rows) {
                let arow = a.as_ptr().add((i + r) * k);
                let a0 = *arow.add(l) as i16;
                let a1 = *arow.add(l + 1) as i16;
                let apair = _mm256_set1_epi32(((a1 as i32) << 16) | (a0 as u16 as i32));
                *v = _mm256_add_epi32(*v, _mm256_madd_epi16(b16, apair));
            }
            l += 2;
        }
        let lv = l;
        for r in 0..rows {
            let mut out = [0i32; 8];
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, vacc[r]);
            let crow = &mut c[(i + r) * n..(i + r + 1) * n];
            for (cv, &v) in crow.iter_mut().zip(&out) {
                *cv = cv.wrapping_add(v);
            }
            // scalar tail: the last k-values where an 8-byte row load
            // would run past the end of B
            let arow = &a[(i + r) * k..(i + r + 1) * k];
            for (l, &av) in arow.iter().enumerate().skip(lv) {
                let av = av as i32;
                for (cv, &bv) in crow.iter_mut().zip(&b[l * n..(l + 1) * n]) {
                    *cv = cv.wrapping_add(av.wrapping_mul(bv as i32));
                }
            }
        }
        i += rows;
    }
}

/// Skinny-n kernel over raw row-major operands (n ≤ 8, m large); see
/// [`super::scalar::small_n_dense`]. Bit-identical: exact products,
/// wrapping accumulation.
pub fn small_n_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 kernel dispatched without avx2");
    debug_assert!(n <= 8, "skinny-n kernel requires n <= 8");
    // SAFETY: AVX2 detection gates dispatch (debug-asserted above);
    // slice shapes are the m×k / k×n / m×n engine contract and n ≤ 8 is
    // the skinny-path routing precondition — the impl's bounds
    // reasoning needs exactly those.
    unsafe { small_n_dense_impl(m, n, k, a, b, c) }
}

// ---- SIMD pack routines ---------------------------------------------------

// SAFETY: requires AVX2 (SSE unpack/loads). The 16-byte row loads are
// guarded by `l + 16 <= kreal` (so `pc + l + 16 <= k` stays inside each
// row) and `i0 + 4 <= m` (all four rows exist); stores write through
// `panel_buf`'s own pointer within `l*4 + 64 <= panel_buf.len()`.
#[target_feature(enable = "avx2")]
unsafe fn pack_a_block_impl(
    buf: &mut [i8],
    a: &[i8],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    kcb: usize,
) {
    let panel = kcb * 4;
    let kreal = kcb.min(k.saturating_sub(pc));
    for (p, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let i0 = ic + p * 4;
        let mut l = 0;
        if i0 + 4 <= m {
            // interior panel: a 4×16 byte transpose per step — load 16
            // k-values from each of the 4 rows, interleave to the
            // packed (l-major, 4-row) layout with punpck trees
            let base = a.as_ptr().add(i0 * k + pc);
            while l + 16 <= kreal {
                let x0 = _mm_loadu_si128(base.add(l) as *const __m128i);
                let x1 = _mm_loadu_si128(base.add(k + l) as *const __m128i);
                let x2 = _mm_loadu_si128(base.add(2 * k + l) as *const __m128i);
                let x3 = _mm_loadu_si128(base.add(3 * k + l) as *const __m128i);
                let t0 = _mm_unpacklo_epi8(x0, x1);
                let t1 = _mm_unpackhi_epi8(x0, x1);
                let t2 = _mm_unpacklo_epi8(x2, x3);
                let t3 = _mm_unpackhi_epi8(x2, x3);
                let dst = panel_buf.as_mut_ptr().add(l * 4);
                _mm_storeu_si128(dst as *mut __m128i, _mm_unpacklo_epi16(t0, t2));
                _mm_storeu_si128(dst.add(16) as *mut __m128i, _mm_unpackhi_epi16(t0, t2));
                _mm_storeu_si128(dst.add(32) as *mut __m128i, _mm_unpacklo_epi16(t1, t3));
                _mm_storeu_si128(dst.add(48) as *mut __m128i, _mm_unpackhi_epi16(t1, t3));
                l += 16;
            }
        }
        // edge panels and the k remainder/padding: the scalar layout
        // reference, byte-identical by construction
        for l in l..kcb {
            let lg = pc + l;
            for (rx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                let i = i0 + rx;
                *out = if lg < k && i < m { a[i * k + lg] } else { 0 };
            }
        }
    }
}

/// SIMD [`super::scalar::pack_a_block`]: byte-identical packed image,
/// built 16 k-values per step via 4×16 byte transposes.
pub fn pack_a_block(
    buf: &mut [i8],
    a: &[i8],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    kcb: usize,
) {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 packer dispatched without avx2");
    // SAFETY: AVX2 detection gates dispatch (debug-asserted above); the
    // buffer/operand shapes are the shared packing contract
    // (`buf.len()` a multiple of `kcb*4`, `a` row-major m×k) and every
    // vector load/store is bounds-guarded inside the impl.
    unsafe { pack_a_block_impl(buf, a, m, k, ic, pc, kcb) }
}

/// SIMD [`super::scalar::pack_b_block`]: byte-identical packed image.
/// Interior panels copy each k-value's 4 contiguous source bytes as one
/// word (safe code — the compiler emits 32-bit copies); only the matrix
/// edge takes the byte-wise reference path.
pub fn pack_b_block(
    buf: &mut [i8],
    b: &[i8],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    kcb: usize,
) {
    let panel = kcb * 4;
    let kreal = kcb.min(k.saturating_sub(pc));
    for (q, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let j0 = jc + q * 4;
        if j0 + 4 <= n {
            let (body, tail) = panel_buf.split_at_mut(kreal * 4);
            for (l, out) in body.chunks_exact_mut(4).enumerate() {
                let src = (pc + l) * n + j0;
                out.copy_from_slice(&b[src..src + 4]);
            }
            tail.fill(0);
        } else {
            for l in 0..kcb {
                let lg = pc + l;
                for (cx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                    let j = j0 + cx;
                    *out = if lg < k && j < n { b[lg * n + j] } else { 0 };
                }
            }
        }
    }
}

// SAFETY: requires AVX2. Each iteration loads two whole 32-byte chunks
// (guarded by `t * 64 + 64 <= vals.len()`) and stores one 32-byte chunk
// at `t * 32` (fits because `out.len() = ceil(vals.len()/2)`).
#[target_feature(enable = "avx2")]
unsafe fn pack_nibbles_impl(vals: &[i8], out: &mut [i8]) {
    let lo_mask = _mm256_set1_epi16(0x000f);
    let hi_mask = _mm256_set1_epi16(0x00f0);
    let full = vals.len() / 64;
    for t in 0..full {
        let mut halves = [_mm256_setzero_si256(); 2];
        for (h, half) in halves.iter_mut().enumerate() {
            let v = _mm256_loadu_si256(vals.as_ptr().add(t * 64 + h * 32) as *const __m256i);
            // per 16-bit lane x = lo_byte | hi_byte<<8, the packed
            // nibble byte is (x & 0xf) | ((x >> 4) & 0xf0)
            *half = _mm256_or_si256(
                _mm256_and_si256(v, lo_mask),
                _mm256_and_si256(_mm256_srli_epi16::<4>(v), hi_mask),
            );
        }
        // pack the 16-bit lanes to bytes; vpackuswb interleaves 128-bit
        // lanes, so permute the 64-bit quarters back to sequential
        let packed = _mm256_packus_epi16(halves[0], halves[1]);
        let seq = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
        _mm256_storeu_si256(out.as_mut_ptr().add(t * 32) as *mut __m256i, seq);
    }
    // scalar tail, including the odd trailing low nibble
    for (pair, o) in vals[full * 64..].chunks(2).zip(out[full * 32..].iter_mut()) {
        let lo = pair[0] as u8 & 0x0f;
        let hi = pair.get(1).map_or(0, |&v| (v as u8) << 4);
        *o = (lo | hi) as i8;
    }
}

/// SIMD [`super::scalar::pack_nibbles`]: byte-identical nibble image,
/// 64 input bytes per step.
pub fn pack_nibbles(vals: &[i8]) -> Vec<i8> {
    debug_assert!(is_x86_feature_detected!("avx2"), "avx2 packer dispatched without avx2");
    let mut out = vec![0i8; vals.len().div_ceil(2)];
    // SAFETY: AVX2 detection gates dispatch (debug-asserted above) and
    // `out` is sized to exactly ceil(len/2), the impl's store bound.
    unsafe { pack_nibbles_impl(vals, &mut out) };
    out
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;
    use crate::reference::SplitMix64;

    fn have_avx2() -> bool {
        is_x86_feature_detected!("avx2")
    }

    fn have_fma() -> bool {
        have_avx2() && is_x86_feature_detected!("fma")
    }

    #[test]
    fn tile_is_bit_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(10);
        for kcb in [8, 16, 48, 160] {
            let pa = r.i8_vec(kcb * 4, -128, 127);
            let pb = r.i8_vec(kcb * 4, -128, 127);
            let mut want = [[1i32, -2, 3, -4]; 4];
            let mut got = want;
            scalar::tile_i8(&pa, &pb, &mut want);
            tile_i8(&pa, &pb, &mut got);
            assert_eq!(got, want, "kcb={kcb}");
        }
    }

    #[test]
    fn wide_tile_is_bit_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(20);
        for kcb in [8, 16, 48, 160] {
            let pa = r.i8_vec(kcb * 4, -128, 127);
            let pb = r.i8_vec(kcb * 8, -128, 127);
            let mut want = [[3i32, -1, 4, -1]; 8];
            let mut got = want;
            scalar::tile_i8_wide(&pa, &pb, &mut want);
            tile_i8_wide(&pa, &pb, &mut got);
            assert_eq!(got, want, "kcb={kcb}");
        }
    }

    #[test]
    fn small_n_dense_is_bit_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(21);
        for (m, n, k) in [(1, 1, 1), (5, 4, 3), (16, 8, 64), (33, 7, 19), (9, 8, 2), (64, 1, 40)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let mut want = vec![-3i32; m * n];
            let mut got = want.clone();
            scalar::small_n_dense(m, n, k, &a, &b, &mut want);
            small_n_dense(m, n, k, &a, &b, &mut got);
            assert_eq!(got, want, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn packers_are_byte_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(22);
        for (rows, cols, kcb, rc, pc) in
            [(64, 48, 32, 0, 0), (61, 47, 32, 60, 16), (7, 3, 48, 4, 0), (16, 16, 16, 0, 9)]
        {
            // B: rows=k, cols=n; A: rows=m, cols=k
            let b = r.i8_vec(rows * cols, -128, 127);
            let ncb = (cols - rc.min(cols)).min(8 * 4).next_multiple_of(4).max(4);
            let mut want = vec![0x55i8; ncb * kcb];
            let mut got = want.clone();
            scalar::pack_b_block(&mut want, &b, cols, rows, rc, pc, kcb);
            pack_b_block(&mut got, &b, cols, rows, rc, pc, kcb);
            assert_eq!(got, want, "pack_b {rows}x{cols} jc={rc} pc={pc} kcb={kcb}");

            let a = r.i8_vec(rows * cols, -128, 127);
            let mcb = (rows - rc.min(rows)).min(8 * 4).next_multiple_of(4).max(4);
            let mut want = vec![0x55i8; mcb * kcb];
            let mut got = want.clone();
            scalar::pack_a_block(&mut want, &a, rows, cols, rc, pc, kcb);
            pack_a_block(&mut got, &a, rows, cols, rc, pc, kcb);
            assert_eq!(got, want, "pack_a {rows}x{cols} ic={rc} pc={pc} kcb={kcb}");
        }
    }

    #[test]
    fn pack_nibbles_is_byte_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(23);
        for len in [0, 1, 2, 63, 64, 65, 127, 128, 129, 1000] {
            let vals = r.i8_vec(len, -8, 7);
            assert_eq!(pack_nibbles(&vals), scalar::pack_nibbles(&vals), "len={len}");
        }
    }

    #[test]
    fn small_m_dense_is_bit_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(11);
        for (m, n, k) in [(1, 1, 1), (2, 16, 5), (3, 33, 7), (8, 100, 13), (4, 15, 64)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let mut want = vec![7i32; m * n];
            let mut got = want.clone();
            scalar::small_m_dense(m, n, k, &a, &b, &mut want);
            small_m_dense(m, n, k, &a, &b, &mut got);
            assert_eq!(got, want, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn panel_mav_is_bit_identical_to_scalar() {
        if !have_avx2() {
            return;
        }
        let mut r = SplitMix64::new(12);
        for kreal in [0, 1, 2, 7, 16, 33] {
            let a_row = r.i8_vec(kreal, -128, 127);
            let panel = r.i8_vec(kreal.max(1) * 4, -128, 127);
            let mut want = [5i32, -6, 7, -8];
            let mut got = want;
            scalar::panel_mav(&mut want, &a_row, &panel);
            panel_mav(&mut got, &a_row, &panel);
            assert_eq!(got, want, "kreal={kreal}");
        }
    }

    #[test]
    fn f32_tile_matches_scalar_chain_bitwise() {
        if !have_fma() {
            return;
        }
        // the AVX2 tile is 4×16 = four scalar 4×4 tiles side by side;
        // check each element continues the same fma chain
        let mut r = SplitMix64::new(13);
        let kcb = 37;
        let pa: Vec<f32> = (0..kcb * 4).map(|_| r.next_i8(-50, 50) as f32 * 0.125).collect();
        let pb: Vec<f32> = (0..kcb * 16).map(|_| r.next_i8(-50, 50) as f32 * 0.125).collect();
        let mut got = [0.5f32; 64];
        let want = got;
        f32_tile(&pa, &pb, kcb, &mut got);
        for (i, row) in want.chunks(16).enumerate() {
            for (j, &seed) in row.iter().enumerate() {
                let mut acc = seed;
                for l in 0..kcb {
                    acc = pa[l * 4 + i].mul_add(pb[l * 16 + j], acc);
                }
                assert_eq!(got[i * 16 + j].to_bits(), acc.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn f32_small_m_is_bit_identical_to_scalar() {
        if !have_fma() {
            return;
        }
        let mut r = SplitMix64::new(14);
        for (m, n, k) in [(1, 9, 3), (2, 8, 16), (4, 31, 11)] {
            let a: Vec<f32> = (0..m * k).map(|_| r.next_i8(-64, 64) as f32 * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|_| r.next_i8(-64, 64) as f32 * 0.25).collect();
            let mut want = vec![0.25f32; m * n];
            let mut got = want.clone();
            scalar::f32_small_m(m, n, k, &a, &b, &mut want);
            f32_small_m(m, n, k, &a, &b, &mut got);
            assert!(got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()), "{m}x{n}x{k}");
        }
    }
}
