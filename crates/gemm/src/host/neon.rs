//! aarch64 NEON tier.
//!
//! Integer kernels widen i8→i16 with `sxtl` (`vmovl_s8`) and
//! accumulate through the widening multiply-accumulates `smlal`
//! (`vmlal_lane_s16` / `vmlal_n_s16`) — every product is exact and
//! every add wraps in i32, so the tier is bit-identical to the scalar
//! reference by construction. f32 kernels use `vfma` with the same
//! per-element fma chain (`l` ascending) as [`super::scalar`], hence
//! bit-identical f32 results too.
//!
//! Same structure as [`super::avx2`]: `_impl` functions are
//! `unsafe fn` with `#[target_feature(enable = "neon")]` and no inner
//! unsafe blocks; the public wrappers hold the single `unsafe` call.

#![cfg(target_arch = "aarch64")]

use std::arch::aarch64::*;
use std::arch::is_aarch64_feature_detected;

// SAFETY: requires NEON (the `target_feature` precondition). The
// `vld1q` loads stay in bounds because `iters` is derived from
// `pa.len()` and the packing contract gives `pb` the same whole-16-byte
// chunk count; the store lands in the stack-local `out` array.
#[target_feature(enable = "neon")]
unsafe fn tile_i8_impl(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    let mut vacc = [vdupq_n_s32(0); 4];
    // 4 k-values (16 packed bytes) per iteration; panel depth is a
    // multiple of 8 k-values so 16-byte chunks divide evenly
    let iters = pa.len() / 16;
    for t in 0..iters {
        let a8 = vld1q_s8(pa.as_ptr().add(t * 16));
        let b8 = vld1q_s8(pb.as_ptr().add(t * 16));
        let a16_lo = vmovl_s8(vget_low_s8(a8)); // rows of l0 | l1
        let a16_hi = vmovl_s8(vget_high_s8(a8)); // rows of l2 | l3
        let b16_lo = vmovl_s8(vget_low_s8(b8));
        let b16_hi = vmovl_s8(vget_high_s8(b8));
        let a_l0 = vget_low_s16(a16_lo);
        let a_l1 = vget_high_s16(a16_lo);
        let a_l2 = vget_low_s16(a16_hi);
        let a_l3 = vget_high_s16(a16_hi);
        let b_l0 = vget_low_s16(b16_lo);
        let b_l1 = vget_high_s16(b16_lo);
        let b_l2 = vget_low_s16(b16_hi);
        let b_l3 = vget_high_s16(b16_hi);
        // smlal: vacc[i][j] += a(l, i) · b(l, j), exact and wrapping
        vacc[0] = vmlal_lane_s16::<0>(vacc[0], b_l0, a_l0);
        vacc[1] = vmlal_lane_s16::<1>(vacc[1], b_l0, a_l0);
        vacc[2] = vmlal_lane_s16::<2>(vacc[2], b_l0, a_l0);
        vacc[3] = vmlal_lane_s16::<3>(vacc[3], b_l0, a_l0);
        vacc[0] = vmlal_lane_s16::<0>(vacc[0], b_l1, a_l1);
        vacc[1] = vmlal_lane_s16::<1>(vacc[1], b_l1, a_l1);
        vacc[2] = vmlal_lane_s16::<2>(vacc[2], b_l1, a_l1);
        vacc[3] = vmlal_lane_s16::<3>(vacc[3], b_l1, a_l1);
        vacc[0] = vmlal_lane_s16::<0>(vacc[0], b_l2, a_l2);
        vacc[1] = vmlal_lane_s16::<1>(vacc[1], b_l2, a_l2);
        vacc[2] = vmlal_lane_s16::<2>(vacc[2], b_l2, a_l2);
        vacc[3] = vmlal_lane_s16::<3>(vacc[3], b_l2, a_l2);
        vacc[0] = vmlal_lane_s16::<0>(vacc[0], b_l3, a_l3);
        vacc[1] = vmlal_lane_s16::<1>(vacc[1], b_l3, a_l3);
        vacc[2] = vmlal_lane_s16::<2>(vacc[2], b_l3, a_l3);
        vacc[3] = vmlal_lane_s16::<3>(vacc[3], b_l3, a_l3);
    }
    for (row, v) in acc.iter_mut().zip(vacc) {
        let mut out = [0i32; 4];
        vst1q_s32(out.as_mut_ptr(), v);
        for (c, o) in row.iter_mut().zip(out) {
            *c = c.wrapping_add(o);
        }
    }
}

/// See [`super::scalar::tile_i8`]; bit-identical, NEON-accelerated.
pub fn tile_i8(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    debug_assert!(is_aarch64_feature_detected!("neon"), "neon kernel dispatched without neon");
    // SAFETY: the HostKernel dispatch table only routes here after
    // runtime NEON detection (debug-asserted above), and the packer
    // emits `pa`/`pb` as whole 16-byte chunks — tile_i8_impl's two
    // preconditions.
    unsafe { tile_i8_impl(pa, pb, acc) }
}

// SAFETY: requires NEON. Every pointer offset is guarded by the loop
// bounds: C rows via `j + 8 <= n`, B rows via the same guard (for
// `l < k`, `l*n + j + 8 <= k*n` follows from `j + 8 <= n`); the scalar
// remainder uses safe indexing.
#[target_feature(enable = "neon")]
unsafe fn small_m_dense_impl(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        // 8 output columns per step, accumulators held across k
        while j + 8 <= n {
            let cptr = c.as_mut_ptr().add(i * n + j);
            let mut acc_lo = vld1q_s32(cptr);
            let mut acc_hi = vld1q_s32(cptr.add(4));
            for (l, &av) in arow.iter().enumerate() {
                let b16 = vmovl_s8(vld1_s8(b.as_ptr().add(l * n + j)));
                acc_lo = vmlal_n_s16(acc_lo, vget_low_s16(b16), av as i16);
                acc_hi = vmlal_n_s16(acc_hi, vget_high_s16(b16), av as i16);
            }
            vst1q_s32(cptr, acc_lo);
            vst1q_s32(cptr.add(4), acc_hi);
            j += 8;
        }
        for j in j..n {
            let mut acc = c[i * n + j];
            for (l, &av) in arow.iter().enumerate() {
                acc = acc.wrapping_add((av as i32).wrapping_mul(b[l * n + j] as i32));
            }
            c[i * n + j] = acc;
        }
    }
}

/// See [`super::scalar::small_m_dense`]; bit-identical.
pub fn small_m_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    debug_assert!(is_aarch64_feature_detected!("neon"), "neon kernel dispatched without neon");
    // SAFETY: NEON is runtime-detected before dispatch reaches this
    // tier (debug-asserted above); slice shapes are the m×k / k×n / m×n
    // engine contract the impl's bounds reasoning relies on.
    unsafe { small_m_dense_impl(m, n, k, a, b, c) }
}

// SAFETY: requires NEON, and `panel` must hold 4 columns per k-value
// of `a_row` (the weight-panel layout): the 8-byte load at `l*4` needs
// `l + 2 <= a_row.len()`, which the loop guard enforces.
#[target_feature(enable = "neon")]
unsafe fn panel_mav_impl(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    let mut vacc = vld1q_s32(acc.as_ptr());
    let kreal = a_row.len();
    let mut l = 0;
    while l + 2 <= kreal {
        // 2 k-values × 4 columns = 8 panel bytes
        let b16 = vmovl_s8(vld1_s8(panel.as_ptr().add(l * 4)));
        vacc = vmlal_n_s16(vacc, vget_low_s16(b16), a_row[l] as i16);
        vacc = vmlal_n_s16(vacc, vget_high_s16(b16), a_row[l + 1] as i16);
        l += 2;
    }
    vst1q_s32(acc.as_mut_ptr(), vacc);
    if l < kreal {
        let a = a_row[l] as i32;
        for (j, v) in acc.iter_mut().enumerate() {
            *v = v.wrapping_add(a.wrapping_mul(panel[l * 4 + j] as i32));
        }
    }
}

/// See [`super::scalar::panel_mav`]; bit-identical.
pub fn panel_mav(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    debug_assert!(is_aarch64_feature_detected!("neon"), "neon kernel dispatched without neon");
    // SAFETY: NEON detection gates dispatch (debug-asserted above);
    // the registered-weight panel stores 4 columns per k-value, the
    // impl's only layout precondition.
    unsafe { panel_mav_impl(acc, a_row, panel) }
}

// SAFETY: requires NEON, `pa.len() >= kcb*4`, `pb.len() >= kcb*8` and
// `acc.len() >= 32` — every load/store offset below is bounded by
// those three lengths (the wrapper debug-asserts them).
#[target_feature(enable = "neon")]
unsafe fn f32_tile_impl(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    // 4×8 register tile: two 4-wide accumulators per row
    let mut lo = [vdupq_n_f32(0.0); 4];
    let mut hi = [vdupq_n_f32(0.0); 4];
    for i in 0..4 {
        lo[i] = vld1q_f32(acc.as_ptr().add(i * 8));
        hi[i] = vld1q_f32(acc.as_ptr().add(i * 8 + 4));
    }
    for l in 0..kcb {
        let b_lo = vld1q_f32(pb.as_ptr().add(l * 8));
        let b_hi = vld1q_f32(pb.as_ptr().add(l * 8 + 4));
        for i in 0..4 {
            let a = pa[l * 4 + i];
            lo[i] = vfmaq_n_f32(lo[i], b_lo, a);
            hi[i] = vfmaq_n_f32(hi[i], b_hi, a);
        }
    }
    for i in 0..4 {
        vst1q_f32(acc.as_mut_ptr().add(i * 8), lo[i]);
        vst1q_f32(acc.as_mut_ptr().add(i * 8 + 4), hi[i]);
    }
}

/// 4×8 f32 fma register tile; same per-element fma chain as scalar.
pub fn f32_tile(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    debug_assert!(pa.len() >= kcb * 4 && pb.len() >= kcb * 8 && acc.len() >= 32);
    debug_assert!(is_aarch64_feature_detected!("neon"), "neon kernel dispatched without neon");
    // SAFETY: NEON is runtime-detected before dispatch (asserted
    // above), and the length preconditions are debug-asserted; release
    // callers are the dispatch table, which packs to exactly these
    // shapes.
    unsafe { f32_tile_impl(pa, pb, kcb, acc) }
}

// SAFETY: requires NEON. Pointer offsets are bounded the same way as
// [`small_m_dense_impl`]: `j + 4 <= n` covers both the C-row store and
// the B-row loads; the remainder path is safe indexing.
#[target_feature(enable = "neon")]
unsafe fn f32_small_m_impl(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 4 <= n {
            let cptr = c.as_mut_ptr().add(i * n + j);
            let mut acc = vld1q_f32(cptr);
            for (l, &av) in arow.iter().enumerate() {
                acc = vfmaq_n_f32(acc, vld1q_f32(b.as_ptr().add(l * n + j)), av);
            }
            vst1q_f32(cptr, acc);
            j += 4;
        }
        for j in j..n {
            let mut acc = c[i * n + j];
            for (l, &av) in arow.iter().enumerate() {
                acc = av.mul_add(b[l * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
}

/// See [`super::scalar::f32_small_m`]; bit-identical (fma chain).
pub fn f32_small_m(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(is_aarch64_feature_detected!("neon"), "neon kernel dispatched without neon");
    // SAFETY: NEON gates dispatch to this tier (debug-asserted above);
    // slice shapes are the m×k / k×n / m×n engine contract.
    unsafe { f32_small_m_impl(m, n, k, a, b, c) }
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;
    use crate::reference::SplitMix64;

    #[test]
    fn tile_is_bit_identical_to_scalar() {
        let mut r = SplitMix64::new(20);
        for kcb in [8, 16, 48, 160] {
            let pa = r.i8_vec(kcb * 4, -128, 127);
            let pb = r.i8_vec(kcb * 4, -128, 127);
            let mut want = [[1i32, -2, 3, -4]; 4];
            let mut got = want;
            scalar::tile_i8(&pa, &pb, &mut want);
            tile_i8(&pa, &pb, &mut got);
            assert_eq!(got, want, "kcb={kcb}");
        }
    }

    #[test]
    fn small_m_dense_is_bit_identical_to_scalar() {
        let mut r = SplitMix64::new(21);
        for (m, n, k) in [(1, 1, 1), (2, 8, 5), (3, 33, 7), (8, 100, 13)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let mut want = vec![7i32; m * n];
            let mut got = want.clone();
            scalar::small_m_dense(m, n, k, &a, &b, &mut want);
            small_m_dense(m, n, k, &a, &b, &mut got);
            assert_eq!(got, want, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn panel_mav_is_bit_identical_to_scalar() {
        let mut r = SplitMix64::new(22);
        for kreal in [0, 1, 2, 7, 16, 33] {
            let a_row = r.i8_vec(kreal, -128, 127);
            let panel = r.i8_vec(kreal.max(1) * 4, -128, 127);
            let mut want = [5i32, -6, 7, -8];
            let mut got = want;
            scalar::panel_mav(&mut want, &a_row, &panel);
            panel_mav(&mut got, &a_row, &panel);
            assert_eq!(got, want, "kreal={kreal}");
        }
    }

    #[test]
    fn f32_tile_matches_scalar_chain_bitwise() {
        let mut r = SplitMix64::new(23);
        let kcb = 37;
        let pa: Vec<f32> = (0..kcb * 4).map(|_| r.next_i8(-50, 50) as f32 * 0.125).collect();
        let pb: Vec<f32> = (0..kcb * 8).map(|_| r.next_i8(-50, 50) as f32 * 0.125).collect();
        let mut got = [0.5f32; 32];
        let want = got;
        f32_tile(&pa, &pb, kcb, &mut got);
        for (i, row) in want.chunks(8).enumerate() {
            for (j, &seed) in row.iter().enumerate() {
                let mut acc = seed;
                for l in 0..kcb {
                    acc = pa[l * 4 + i].mul_add(pb[l * 8 + j], acc);
                }
                assert_eq!(got[i * 8 + j].to_bits(), acc.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn f32_small_m_is_bit_identical_to_scalar() {
        let mut r = SplitMix64::new(24);
        for (m, n, k) in [(1, 9, 3), (2, 8, 16), (4, 31, 11)] {
            let a: Vec<f32> = (0..m * k).map(|_| r.next_i8(-64, 64) as f32 * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|_| r.next_i8(-64, 64) as f32 * 0.25).collect();
            let mut want = vec![0.25f32; m * n];
            let mut got = want.clone();
            scalar::f32_small_m(m, n, k, &a, &b, &mut want);
            f32_small_m(m, n, k, &a, &b, &mut got);
            assert!(got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()), "{m}x{n}x{k}");
        }
    }
}
