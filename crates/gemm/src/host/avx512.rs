//! x86_64 AVX-512 tier (F+BW+VL).
//!
//! The same exact-arithmetic construction as [`super::avx2`] — i8→i16
//! widening through per-lane `vpshufb` pair interleaves, `vpmaddwd`
//! pairwise dots (exact in i16/i32 headroom), wrapping `vpaddd`
//! accumulation — at twice the vector width: 16 k-values per integer
//! step, 16 f32 lanes per fma, and a 4×16 widened integer register
//! tile that amortizes every A-side shuffle over four B panels. The
//! 32-register zmm file is what makes the 8×32 f32 tile and the
//! 16-accumulator integer tile hold entirely in registers.
//!
//! Depth remainders that do not fill a 64-byte chunk take the scalar
//! reference path — bit-identical by definition, and never hit by the
//! engine's k-step-aligned panels.
//!
//! Every `_impl` below is an `unsafe fn` with
//! `#[target_feature(enable = ...)]` and **no inner unsafe blocks**;
//! the public wrappers hold the single `unsafe` call, guarded by a
//! debug assertion that dispatch only routed here on a capable CPU.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Replicate one 16-byte `vpshufb` lane pattern to all four 128-bit
/// lanes (zmm `vpshufb` shuffles within each lane independently).
const fn repeat_lane(lane: [i8; 16]) -> [i8; 64] {
    let mut m = [0i8; 64];
    let mut g = 0;
    while g < 4 {
        let mut t = 0;
        while t < 16 {
            m[g * 16 + t] = lane[t];
            t += 1;
        }
        g += 1;
    }
    m
}

/// Per-lane pair interleave for a packed B chunk of 16 k-values
/// (`b[l*4+j]`, 64 bytes): lane g's 4 k-values become (l0,l1) pairs for
/// j=0..3 then (l2,l3) pairs for j=0..3 — the [`super::avx2`] layout,
/// one extra lane pair deep.
const B_PAIR_SHUF: [i8; 64] = repeat_lane([0, 4, 1, 5, 2, 6, 3, 7, 8, 12, 9, 13, 10, 14, 11, 15]);

/// Per-row `vpshufb` masks broadcasting row `i` of a packed A chunk as
/// (l, l+1) pairs aligned with [`B_PAIR_SHUF`]'s B layout.
const fn a_row_shuf(i: i8) -> [i8; 64] {
    repeat_lane([
        i,
        4 + i,
        i,
        4 + i,
        i,
        4 + i,
        i,
        4 + i,
        8 + i,
        12 + i,
        8 + i,
        12 + i,
        8 + i,
        12 + i,
        8 + i,
        12 + i,
    ])
}

const A_ROW_SHUF: [[i8; 64]; 4] = [a_row_shuf(0), a_row_shuf(1), a_row_shuf(2), a_row_shuf(3)];

/// `vpshufb` mask spreading 16 raw A bytes (broadcast into every lane
/// by `vbroadcasti32x4`) into [`B_PAIR_SHUF`] pair alignment: lane g
/// carries (a[4g],a[4g+1])×4 then (a[4g+2],a[4g+3])×4, matching B lane
/// g's k-values.
const fn a_panel_shuf() -> [i8; 64] {
    let mut m = [0i8; 64];
    let mut g = 0;
    while g < 4 {
        let base = g * 16;
        let lo = (4 * g) as i8;
        let mut t = 0;
        while t < 4 {
            m[base + 2 * t] = lo;
            m[base + 2 * t + 1] = lo + 1;
            m[base + 8 + 2 * t] = lo + 2;
            m[base + 8 + 2 * t + 1] = lo + 3;
            t += 1;
        }
        g += 1;
    }
    m
}

const A_PANEL_SHUF: [i8; 64] = a_panel_shuf();

// SAFETY: requires AVX512F+AVX512BW (zmm shuffles/widening/madd) and
// AVX2 (ymm fold adds). `iters` derives from `pa.len()` and the packing
// contract gives `pb` the same chunk count; the sub-64-byte remainder
// takes the safe scalar path; stores land in stack-local arrays.
#[target_feature(enable = "avx512f,avx512bw,avx2")]
unsafe fn tile_i8_impl(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    let bshuf = _mm512_loadu_epi8(B_PAIR_SHUF.as_ptr());
    let ashuf = [
        _mm512_loadu_epi8(A_ROW_SHUF[0].as_ptr()),
        _mm512_loadu_epi8(A_ROW_SHUF[1].as_ptr()),
        _mm512_loadu_epi8(A_ROW_SHUF[2].as_ptr()),
        _mm512_loadu_epi8(A_ROW_SHUF[3].as_ptr()),
    ];
    let mut vacc = [_mm512_setzero_si512(); 4];
    // 16 k-values (64 packed bytes) per iteration
    let iters = pa.len() / 64;
    for t in 0..iters {
        let ap = _mm512_loadu_epi8(pa.as_ptr().add(t * 64));
        let bp = _mm512_loadu_epi8(pb.as_ptr().add(t * 64));
        let bs = _mm512_shuffle_epi8(bp, bshuf);
        let b_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(bs));
        let b_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(bs));
        for i in 0..4 {
            let asel = _mm512_shuffle_epi8(ap, ashuf[i]);
            let a_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(asel));
            let a_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(asel));
            // vpmaddwd: exact pairwise i16 dot products in i32 lanes
            let prod =
                _mm512_add_epi32(_mm512_madd_epi16(a_lo, b_lo), _mm512_madd_epi16(a_hi, b_hi));
            vacc[i] = _mm512_add_epi32(vacc[i], prod);
        }
    }
    for (row, v) in acc.iter_mut().zip(vacc) {
        // each 128-bit quarter holds j0..3 over a disjoint k subset —
        // fold quarters, then fold into the caller tile
        let half = _mm256_add_epi32(_mm512_castsi512_si256(v), _mm512_extracti64x4_epi64::<1>(v));
        let folded =
            _mm_add_epi32(_mm256_castsi256_si128(half), _mm256_extracti128_si256::<1>(half));
        let mut out = [0i32; 4];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, folded);
        for (c, o) in row.iter_mut().zip(out) {
            *c = c.wrapping_add(o);
        }
    }
    // 8-k remainder (32 packed bytes): never produced by the engine's
    // k-step-aligned panels, but the dispatch contract allows it
    if !pa.len().is_multiple_of(64) {
        super::scalar::tile_i8(&pa[iters * 64..], &pb[iters * 64..], acc);
    }
}

/// See [`super::scalar::tile_i8`]; bit-identical, AVX-512-accelerated.
pub fn tile_i8(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]; 4]) {
    debug_assert!(have_avx512(), "avx512 kernel dispatched without avx512f/bw");
    // SAFETY: the HostKernel dispatch table only routes here after
    // runtime AVX-512 detection (debug-asserted above), and the packer
    // emits `pa`/`pb` as whole 32-byte chunks — any 32-byte tail past
    // the 64-byte main loop is handled by the scalar reference inside.
    unsafe { tile_i8_impl(pa, pb, acc) }
}

// SAFETY: requires AVX512F+AVX512BW+AVX2. Loads stay in bounds because
// `iters` derives from `pa.len()` and the wrapper asserts `pb` holds
// exactly four panels of that depth; the remainder path is safe code.
#[target_feature(enable = "avx512f,avx512bw,avx2")]
unsafe fn tile_i8_wide_impl(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]]) {
    let panel = pa.len();
    let bshuf = _mm512_loadu_epi8(B_PAIR_SHUF.as_ptr());
    let ashuf = [
        _mm512_loadu_epi8(A_ROW_SHUF[0].as_ptr()),
        _mm512_loadu_epi8(A_ROW_SHUF[1].as_ptr()),
        _mm512_loadu_epi8(A_ROW_SHUF[2].as_ptr()),
        _mm512_loadu_epi8(A_ROW_SHUF[3].as_ptr()),
    ];
    // 4×16 register tile: one A panel × four adjacent B panels, all 16
    // zmm accumulators live across the depth loop — every A shuffle and
    // widening is amortized over 4× the columns of [`tile_i8`]
    let mut vacc = [[_mm512_setzero_si512(); 4]; 4];
    let iters = panel / 64;
    for t in 0..iters {
        let ap = _mm512_loadu_epi8(pa.as_ptr().add(t * 64));
        let mut blo = [_mm512_setzero_si512(); 4];
        let mut bhi = [_mm512_setzero_si512(); 4];
        for q in 0..4 {
            let bp = _mm512_loadu_epi8(pb.as_ptr().add(q * panel + t * 64));
            let bs = _mm512_shuffle_epi8(bp, bshuf);
            blo[q] = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(bs));
            bhi[q] = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(bs));
        }
        for i in 0..4 {
            let asel = _mm512_shuffle_epi8(ap, ashuf[i]);
            let a_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(asel));
            let a_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(asel));
            for q in 0..4 {
                let prod = _mm512_add_epi32(
                    _mm512_madd_epi16(a_lo, blo[q]),
                    _mm512_madd_epi16(a_hi, bhi[q]),
                );
                vacc[i][q] = _mm512_add_epi32(vacc[i][q], prod);
            }
        }
    }
    for (i, rowacc) in vacc.iter().enumerate() {
        for (q, &v) in rowacc.iter().enumerate() {
            let half =
                _mm256_add_epi32(_mm512_castsi512_si256(v), _mm512_extracti64x4_epi64::<1>(v));
            let folded =
                _mm_add_epi32(_mm256_castsi256_si128(half), _mm256_extracti128_si256::<1>(half));
            let mut out = [0i32; 4];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, folded);
            for (c, o) in acc[q * 4 + i].iter_mut().zip(out) {
                *c = c.wrapping_add(o);
            }
        }
    }
    if !panel.is_multiple_of(64) {
        let tail = iters * 64;
        for q in 0..4 {
            let sub: &mut [[i32; 4]; 4] =
                (&mut acc[q * 4..q * 4 + 4]).try_into().expect("chunks of 4 rows");
            super::scalar::tile_i8(&pa[tail..], &pb[q * panel + tail..(q + 1) * panel], sub);
        }
    }
}

/// Widened 4×16 integer tile (see [`super::scalar::tile_i8_wide`]): one
/// packed A panel against four adjacent B panels per call;
/// bit-identical to four [`tile_i8`] calls (wrapping adds commute).
pub fn tile_i8_wide(pa: &[i8], pb: &[i8], acc: &mut [[i32; 4]]) {
    debug_assert!(have_avx512(), "avx512 kernel dispatched without avx512f/bw");
    debug_assert_eq!(acc.len(), 16, "avx512 wide tile is 4x16 (four panels)");
    debug_assert_eq!(pb.len(), 4 * pa.len(), "pb must hold four panels of pa's depth");
    debug_assert_eq!(pa.len() % 32, 0, "panel depth must be a multiple of 8 k-values");
    // SAFETY: AVX-512 detection gates dispatch (debug-asserted above);
    // the panel-shape preconditions the impl's bounds reasoning needs
    // are debug-asserted here and guaranteed by the engine's grouping
    // loop, which only forms whole four-panel groups.
    unsafe { tile_i8_wide_impl(pa, pb, acc) }
}

// SAFETY: requires AVX512F+AVX512BW. C-row pointer offsets are guarded
// by `j + 32 <= n` (covering the two 16-lane i32 loads/stores) and the
// 32-byte B loads by the same guard (for `l < k`, `l*n + j + 32 <= k*n`
// follows); the scalar remainder uses safe indexing.
#[target_feature(enable = "avx512f,avx512bw,avx2")]
unsafe fn small_m_dense_impl(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        // 32 output columns per step, i32 accumulators held across the
        // whole k loop (B rows stream through cache once per A row)
        while j + 32 <= n {
            let cptr = c.as_mut_ptr().add(i * n + j);
            let mut acc0 = _mm512_loadu_epi32(cptr);
            let mut acc1 = _mm512_loadu_epi32(cptr.add(16));
            for (l, &av) in arow.iter().enumerate() {
                let a16 = _mm512_set1_epi16(av as i16);
                let b8 = _mm256_loadu_si256(b.as_ptr().add(l * n + j) as *const __m256i);
                let b16 = _mm512_cvtepi8_epi16(b8);
                // i8×i8 products fit i16 exactly (|p| ≤ 16384)
                let p16 = _mm512_mullo_epi16(a16, b16);
                let lo = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(p16));
                let hi = _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64::<1>(p16));
                acc0 = _mm512_add_epi32(acc0, lo);
                acc1 = _mm512_add_epi32(acc1, hi);
            }
            _mm512_storeu_epi32(cptr, acc0);
            _mm512_storeu_epi32(cptr.add(16), acc1);
            j += 32;
        }
        for j in j..n {
            let mut sum = c[i * n + j];
            for (l, &av) in arow.iter().enumerate() {
                sum = sum.wrapping_add((av as i32).wrapping_mul(b[l * n + j] as i32));
            }
            c[i * n + j] = sum;
        }
    }
}

/// See [`super::scalar::small_m_dense`]; bit-identical.
pub fn small_m_dense(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    debug_assert!(have_avx512(), "avx512 kernel dispatched without avx512f/bw");
    // SAFETY: AVX-512 is runtime-detected before dispatch reaches this
    // tier (debug-asserted above); slice shapes are the m×k / k×n / m×n
    // engine contract the impl's bounds reasoning relies on.
    unsafe { small_m_dense_impl(m, n, k, a, b, c) }
}

// SAFETY: requires AVX512F+AVX512BW+AVX2, and `panel` must hold 4
// columns per k-value of `a_row`: the 64-byte panel load at `l*4` and
// the 16-byte A load at `l` are both guarded by `l + 16 <= kreal`; the
// remainder is the safe scalar reference.
#[target_feature(enable = "avx512f,avx512bw,avx2")]
unsafe fn panel_mav_impl(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    let kreal = a_row.len();
    let mut l = 0;
    if kreal >= 16 {
        // 16 k-values per iteration: one 64-byte panel load and one
        // 16-byte A load per 64 MACs — a single A "row" of the blocked
        // tile pipeline
        let bshuf = _mm512_loadu_epi8(B_PAIR_SHUF.as_ptr());
        let apanelshuf = _mm512_loadu_epi8(A_PANEL_SHUF.as_ptr());
        let mut vacc16 = _mm512_setzero_si512();
        while l + 16 <= kreal {
            let bp = _mm512_loadu_epi8(panel.as_ptr().add(l * 4));
            let bs = _mm512_shuffle_epi8(bp, bshuf);
            let b_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(bs));
            let b_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(bs));
            let a16 = _mm_loadu_si128(a_row.as_ptr().add(l) as *const __m128i);
            let asel = _mm512_shuffle_epi8(_mm512_broadcast_i32x4(a16), apanelshuf);
            let a_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(asel));
            let a_hi = _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(asel));
            let prod =
                _mm512_add_epi32(_mm512_madd_epi16(a_lo, b_lo), _mm512_madd_epi16(a_hi, b_hi));
            vacc16 = _mm512_add_epi32(vacc16, prod);
            l += 16;
        }
        // each 128-bit quarter holds j0..3 over a disjoint k subset
        let half = _mm256_add_epi32(
            _mm512_castsi512_si256(vacc16),
            _mm512_extracti64x4_epi64::<1>(vacc16),
        );
        let folded =
            _mm_add_epi32(_mm256_castsi256_si128(half), _mm256_extracti128_si256::<1>(half));
        let mut out = [0i32; 4];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, folded);
        for (c, o) in acc.iter_mut().zip(out) {
            *c = c.wrapping_add(o);
        }
    }
    if l < kreal {
        super::scalar::panel_mav(acc, &a_row[l..], &panel[l * 4..]);
    }
}

/// See [`super::scalar::panel_mav`]; bit-identical.
pub fn panel_mav(acc: &mut [i32; 4], a_row: &[i8], panel: &[i8]) {
    debug_assert!(have_avx512(), "avx512 kernel dispatched without avx512f/bw");
    // SAFETY: AVX-512 detection gates dispatch (debug-asserted above);
    // the registered-weight panel stores 4 columns per k-value, the
    // impl's only layout precondition.
    unsafe { panel_mav_impl(acc, a_row, panel) }
}

// SAFETY: requires AVX512F, `pa.len() >= kcb*8`, `pb.len() >= kcb*32`
// and `acc.len() >= 256` — every load/store offset below is bounded by
// those three lengths (the wrapper debug-asserts them).
#[target_feature(enable = "avx512f")]
unsafe fn f32_tile_impl(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    // 8×32 register tile: two 16-wide accumulators per row — 16 of the
    // 32 zmm registers carry C across the whole depth block
    let mut lo = [_mm512_setzero_ps(); 8];
    let mut hi = [_mm512_setzero_ps(); 8];
    for i in 0..8 {
        lo[i] = _mm512_loadu_ps(acc.as_ptr().add(i * 32));
        hi[i] = _mm512_loadu_ps(acc.as_ptr().add(i * 32 + 16));
    }
    for l in 0..kcb {
        let b_lo = _mm512_loadu_ps(pb.as_ptr().add(l * 32));
        let b_hi = _mm512_loadu_ps(pb.as_ptr().add(l * 32 + 16));
        for i in 0..8 {
            let a = _mm512_set1_ps(pa[l * 8 + i]);
            lo[i] = _mm512_fmadd_ps(a, b_lo, lo[i]);
            hi[i] = _mm512_fmadd_ps(a, b_hi, hi[i]);
        }
    }
    for i in 0..8 {
        _mm512_storeu_ps(acc.as_mut_ptr().add(i * 32), lo[i]);
        _mm512_storeu_ps(acc.as_mut_ptr().add(i * 32 + 16), hi[i]);
    }
}

/// 8×32 f32 fma register tile; same per-element fma chain as scalar.
pub fn f32_tile(pa: &[f32], pb: &[f32], kcb: usize, acc: &mut [f32]) {
    debug_assert!(pa.len() >= kcb * 8 && pb.len() >= kcb * 32 && acc.len() >= 256);
    debug_assert!(have_avx512(), "avx512 kernel dispatched without avx512f/bw");
    // SAFETY: AVX-512 is runtime-detected before dispatch (asserted
    // above), and the length preconditions are debug-asserted; release
    // callers are the dispatch table, which packs to exactly these
    // shapes (f32_mr=8, f32_nr=32).
    unsafe { f32_tile_impl(pa, pb, kcb, acc) }
}

// SAFETY: requires AVX512F. Pointer offsets are bounded the same way as
// [`small_m_dense_impl`]: `j + 16 <= n` covers both the C-row
// load/store and the B-row loads; the remainder path is safe indexing.
#[target_feature(enable = "avx512f")]
unsafe fn f32_small_m_impl(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 16 <= n {
            let cptr = c.as_mut_ptr().add(i * n + j);
            let mut vacc = _mm512_loadu_ps(cptr);
            for (l, &av) in arow.iter().enumerate() {
                let bv = _mm512_loadu_ps(b.as_ptr().add(l * n + j));
                vacc = _mm512_fmadd_ps(_mm512_set1_ps(av), bv, vacc);
            }
            _mm512_storeu_ps(cptr, vacc);
            j += 16;
        }
        for j in j..n {
            let mut sum = c[i * n + j];
            for (l, &av) in arow.iter().enumerate() {
                sum = av.mul_add(b[l * n + j], sum);
            }
            c[i * n + j] = sum;
        }
    }
}

/// See [`super::scalar::f32_small_m`]; bit-identical (fma chain).
pub fn f32_small_m(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert!(have_avx512(), "avx512 kernel dispatched without avx512f/bw");
    // SAFETY: AVX-512 gates dispatch to this tier (debug-asserted
    // above); slice shapes are the m×k / k×n / m×n engine contract.
    unsafe { f32_small_m_impl(m, n, k, a, b, c) }
}

/// Runtime gate shared by the wrappers' debug assertions: the features
/// every kernel in this module may rely on.
fn have_avx512() -> bool {
    is_x86_feature_detected!("avx512f")
        && is_x86_feature_detected!("avx512bw")
        && is_x86_feature_detected!("avx512vl")
        && is_x86_feature_detected!("avx2")
        && is_x86_feature_detected!("fma")
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;
    use crate::reference::SplitMix64;

    #[test]
    fn tile_is_bit_identical_to_scalar() {
        if !have_avx512() {
            return;
        }
        let mut r = SplitMix64::new(30);
        for kcb in [8, 16, 24, 48, 160] {
            let pa = r.i8_vec(kcb * 4, -128, 127);
            let pb = r.i8_vec(kcb * 4, -128, 127);
            let mut want = [[1i32, -2, 3, -4]; 4];
            let mut got = want;
            scalar::tile_i8(&pa, &pb, &mut want);
            tile_i8(&pa, &pb, &mut got);
            assert_eq!(got, want, "kcb={kcb}");
        }
    }

    #[test]
    fn wide_tile_is_bit_identical_to_scalar() {
        if !have_avx512() {
            return;
        }
        let mut r = SplitMix64::new(31);
        for kcb in [8, 16, 24, 48, 160] {
            let pa = r.i8_vec(kcb * 4, -128, 127);
            let pb = r.i8_vec(kcb * 16, -128, 127);
            let mut want = [[3i32, -1, 4, -1]; 16];
            let mut got = want;
            scalar::tile_i8_wide(&pa, &pb, &mut want);
            tile_i8_wide(&pa, &pb, &mut got);
            assert_eq!(got, want, "kcb={kcb}");
        }
    }

    #[test]
    fn small_m_dense_is_bit_identical_to_scalar() {
        if !have_avx512() {
            return;
        }
        let mut r = SplitMix64::new(32);
        for (m, n, k) in [(1, 1, 1), (2, 32, 5), (3, 65, 7), (8, 100, 13), (4, 31, 64)] {
            let a = r.i8_vec(m * k, -128, 127);
            let b = r.i8_vec(k * n, -128, 127);
            let mut want = vec![7i32; m * n];
            let mut got = want.clone();
            scalar::small_m_dense(m, n, k, &a, &b, &mut want);
            small_m_dense(m, n, k, &a, &b, &mut got);
            assert_eq!(got, want, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn panel_mav_is_bit_identical_to_scalar() {
        if !have_avx512() {
            return;
        }
        let mut r = SplitMix64::new(33);
        for kreal in [0, 1, 2, 7, 15, 16, 17, 33, 64] {
            let a_row = r.i8_vec(kreal, -128, 127);
            let panel = r.i8_vec(kreal.max(1) * 4, -128, 127);
            let mut want = [5i32, -6, 7, -8];
            let mut got = want;
            scalar::panel_mav(&mut want, &a_row, &panel);
            panel_mav(&mut got, &a_row, &panel);
            assert_eq!(got, want, "kreal={kreal}");
        }
    }

    #[test]
    fn f32_tile_matches_scalar_chain_bitwise() {
        if !have_avx512() {
            return;
        }
        // the AVX-512 tile is 8×32; check each element continues the
        // same fma chain as the scalar contract
        let mut r = SplitMix64::new(34);
        let kcb = 37;
        let pa: Vec<f32> = (0..kcb * 8).map(|_| r.next_i8(-50, 50) as f32 * 0.125).collect();
        let pb: Vec<f32> = (0..kcb * 32).map(|_| r.next_i8(-50, 50) as f32 * 0.125).collect();
        let mut got = [0.5f32; 256];
        let want = got;
        f32_tile(&pa, &pb, kcb, &mut got);
        for (i, row) in want.chunks(32).enumerate() {
            for (j, &seed) in row.iter().enumerate() {
                let mut chain = seed;
                for l in 0..kcb {
                    chain = pa[l * 8 + i].mul_add(pb[l * 32 + j], chain);
                }
                assert_eq!(got[i * 32 + j].to_bits(), chain.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn f32_small_m_is_bit_identical_to_scalar() {
        if !have_avx512() {
            return;
        }
        let mut r = SplitMix64::new(35);
        for (m, n, k) in [(1, 9, 3), (2, 16, 16), (4, 47, 11)] {
            let a: Vec<f32> = (0..m * k).map(|_| r.next_i8(-64, 64) as f32 * 0.25).collect();
            let b: Vec<f32> = (0..k * n).map(|_| r.next_i8(-64, 64) as f32 * 0.25).collect();
            let mut want = vec![0.25f32; m * n];
            let mut got = want.clone();
            scalar::f32_small_m(m, n, k, &a, &b, &mut want);
            f32_small_m(m, n, k, &a, &b, &mut got);
            assert!(got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits()), "{m}x{n}x{k}");
        }
    }
}
