//! Instruction set definition and static classification.

use crate::reg::{ScalarReg, VectorReg};
use std::fmt;

/// Element type for vector arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 8-bit signed integer lanes (64 per register).
    I8,
    /// 16-bit signed integer lanes (32 per register).
    I16,
    /// 32-bit signed integer lanes (16 per register).
    I32,
    /// 32-bit IEEE-754 lanes (16 per register).
    F32,
}

impl ElemType {
    /// Lane width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            ElemType::I8 => 1,
            ElemType::I16 => 2,
            ElemType::I32 | ElemType::F32 => 4,
        }
    }

    /// Number of lanes of this type in a 512-bit register.
    pub fn lanes(self) -> usize {
        crate::VLEN_BYTES / self.bytes()
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElemType::I8 => "s8",
            ElemType::I16 => "s16",
            ElemType::I32 => "s32",
            ElemType::F32 => "f32",
        };
        f.write_str(s)
    }
}

/// Element-wise vector operation selector for [`Inst::VBin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VOp {
    /// `vd = vs1 + vs2` (wrapping for integers).
    Add,
    /// `vd = vs1 - vs2` (wrapping for integers).
    Sub,
    /// `vd = vs1 * vs2` (wrapping, same-width result — this is the SVE
    /// `MUL` that motivates Table 1's ✗ entries: the high half of an i8
    /// product is lost).
    Mul,
    /// `vd += vs1 * vs2` — multiply-accumulate at lane width (`MLA`, or
    /// `FMLA` for f32 lanes).
    Mla,
}

impl fmt::Display for VOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VOp::Add => "vadd",
            VOp::Sub => "vsub",
            VOp::Mul => "vmul",
            VOp::Mla => "vmla",
        };
        f.write_str(s)
    }
}

/// Scalar branch condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        };
        f.write_str(s)
    }
}

/// Data width mode of the `camp` instruction (§4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampMode {
    /// 8-bit operands: VR1 is a 4×16 column-major i8 block, VR2 a 16×4
    /// row-major i8 block; the 4×4 i32 product is accumulated.
    I8,
    /// 4-bit operands: VR1 is a 4×32 column-major nibble block, VR2 a
    /// 32×4 row-major nibble block; the 4×4 i32 product is accumulated.
    I4,
}

impl CampMode {
    /// Inner (k) dimension consumed per `camp` issue: 16 for i8, 32 for i4.
    pub fn k_per_issue(self) -> usize {
        match self {
            CampMode::I8 => 16,
            CampMode::I4 => 32,
        }
    }

    /// Multiply-accumulate operations performed per issue (4 × 4 × k).
    pub fn macs_per_issue(self) -> usize {
        16 * self.k_per_issue()
    }
}

impl fmt::Display for CampMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampMode::I8 => f.write_str("s8"),
            CampMode::I4 => f.write_str("s4"),
        }
    }
}

/// One VVA instruction.
///
/// Branch targets are resolved instruction indices (the assembler fixes
/// them up from labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    // ---- scalar ----
    /// `rd = imm`
    Li { rd: ScalarReg, imm: i64 },
    /// `rd = rs + imm`
    Addi { rd: ScalarReg, rs: ScalarReg, imm: i64 },
    /// `rd = rs1 + rs2`
    Add { rd: ScalarReg, rs1: ScalarReg, rs2: ScalarReg },
    /// `rd = rs1 - rs2`
    Sub { rd: ScalarReg, rs1: ScalarReg, rs2: ScalarReg },
    /// `rd = rs1 * rs2` (wrapping, low 64 bits)
    Mul { rd: ScalarReg, rs1: ScalarReg, rs2: ScalarReg },
    /// `rd = rs << sh`
    Slli { rd: ScalarReg, rs: ScalarReg, sh: u8 },
    /// `rd = rs >> sh` (logical)
    Srli { rd: ScalarReg, rs: ScalarReg, sh: u8 },
    /// `rd = rs & imm`
    Andi { rd: ScalarReg, rs: ScalarReg, imm: i64 },
    /// Conditional branch to instruction index `target`.
    Branch { cond: BranchCond, rs1: ScalarReg, rs2: ScalarReg, target: u32 },
    /// Scalar load: `rd = sign_extend(mem[rs+offset .. +width])`.
    /// `width` ∈ {1, 2, 4, 8}.
    LoadS { rd: ScalarReg, base: ScalarReg, offset: i64, width: u8 },
    /// Scalar store of the low `width` bytes of `rs`.
    StoreS { rs: ScalarReg, base: ScalarReg, offset: i64, width: u8 },
    /// No operation (pipeline filler in some kernels).
    Nop,

    // ---- vector memory ----
    /// Unit-stride 64-byte vector load: `vd = mem[base+offset .. +64]`.
    VLoad { vd: VectorReg, base: ScalarReg, offset: i64 },
    /// Unit-stride 64-byte vector store.
    VStore { vs: VectorReg, base: ScalarReg, offset: i64 },
    /// Load one element of type `ty` and replicate it to all lanes (SVE
    /// `ld1rw`/`ld1rb` analogue — a single instruction, unlike a scalar
    /// load followed by a `dup`).
    VLoadRep { ty: ElemType, vd: VectorReg, base: ScalarReg, offset: i64 },

    // ---- vector arithmetic ----
    /// Element-wise binary/ternary op at `ty` granularity.
    VBin { op: VOp, ty: ElemType, vd: VectorReg, vs1: VectorReg, vs2: VectorReg },
    /// Broadcast the low lane-width bits of scalar `rs` to all lanes.
    VDup { ty: ElemType, vd: VectorReg, rs: ScalarReg },
    /// Zero a vector register.
    VZero { vd: VectorReg },
    /// Widening multiply: multiplies 32 i8 lanes from half `hi` of `vs1`
    /// and `vs2`, producing 32 i16 lanes (NEON `smull`/`smull2` analogue).
    VMull { vd: VectorReg, vs1: VectorReg, vs2: VectorReg, hi: bool },
    /// Pairwise widening accumulate: adds adjacent i16 pairs of `vs` into
    /// the 16 i32 lanes of `vd` (NEON `sadalp` analogue).
    VAdalp { vd: VectorReg, vs: VectorReg },
    /// Sign-extend quarter `part` (0–3) of the i8 lanes of `vs` into the
    /// 16 i32 lanes of `vd` (SVE `sunpklo`/`sunpkhi` chain analogue).
    VSxtl { vd: VectorReg, vs: VectorReg, part: u8 },
    /// Interleave `granule`-byte chunks of `vs1`/`vs2` (ZIP1/ZIP2;
    /// granule 16 is the SVE quadword `ZIP1.Q`/`ZIP2.Q`).
    VZip { vd: VectorReg, vs1: VectorReg, vs2: VectorReg, granule: u8, hi: bool },
    /// Pairwise nibble pack: adjacent i8 pairs (values in [-8, 7]) become
    /// one byte (`even` in the low nibble, `odd` in the high nibble).
    /// `vs1` supplies output bytes 0–31, `vs2` bytes 32–63.
    VPack4 { vd: VectorReg, vs1: VectorReg, vs2: VectorReg },
    /// Pairwise nibble unpack (inverse of [`Inst::VPack4`]): expands the
    /// low (hi = false) or high (hi = true) 32 bytes of `vs` into 64
    /// sign-extended i8 lanes (models PULP-NN-style unpack overhead).
    VUnpack4 { vd: VectorReg, vs: VectorReg, hi: bool },

    // ---- matrix instructions ----
    /// Arm FEAT_I8MM `smmla`: per 128-bit segment, a 2×8 i8 row-major
    /// block of `vs1` times a 2×8 i8 row-major block of `vs2` (i.e.
    /// A · Bᵀ) accumulated into a 2×2 i32 block of `vd`.
    Smmla { vd: VectorReg, vs1: VectorReg, vs2: VectorReg },
    /// The paper's `camp` instruction: `vd += vs1 ⊗ vs2` where the
    /// operands are 4×16/16×4 (i8) or 4×32/32×4 (i4) blocks and `vd`
    /// holds the 4×4 i32 result tile (row-major, 16 lanes). Accumulation
    /// happens in the CAMP auxiliary register; `vd` names it
    /// architecturally.
    Camp { mode: CampMode, vd: VectorReg, vs1: VectorReg, vs2: VectorReg },
}

/// Coarse classification used by statistics and the timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Scalar ALU (including `li`, shifts, `nop`).
    ScalarAlu,
    /// Scalar load or store.
    ScalarMem,
    /// Conditional branch.
    Branch,
    /// Vector load.
    VLoad,
    /// Vector store.
    VStore,
    /// Vector arithmetic (including dup/zip/pack/extend).
    VAlu,
    /// Vector integer multiply-class op (mul/mla/mull/smmla) — these
    /// occupy the multiplier pipeline rather than the simple ALU.
    VMul,
    /// The CAMP functional unit.
    Camp,
}

impl InstClass {
    /// True for any vector-unit instruction (load/store/ALU/MUL/CAMP).
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            InstClass::VLoad
                | InstClass::VStore
                | InstClass::VAlu
                | InstClass::VMul
                | InstClass::Camp
        )
    }
}

impl Inst {
    /// Classify the instruction for statistics and FU binding.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Li { .. }
            | Inst::Addi { .. }
            | Inst::Add { .. }
            | Inst::Sub { .. }
            | Inst::Mul { .. }
            | Inst::Slli { .. }
            | Inst::Srli { .. }
            | Inst::Andi { .. }
            | Inst::Nop => InstClass::ScalarAlu,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::LoadS { .. } | Inst::StoreS { .. } => InstClass::ScalarMem,
            Inst::VLoad { .. } | Inst::VLoadRep { .. } => InstClass::VLoad,
            Inst::VStore { .. } => InstClass::VStore,
            Inst::VBin { op, .. } => match op {
                VOp::Mul | VOp::Mla => InstClass::VMul,
                _ => InstClass::VAlu,
            },
            Inst::VMull { .. } | Inst::Smmla { .. } => InstClass::VMul,
            Inst::VDup { .. }
            | Inst::VZero { .. }
            | Inst::VAdalp { .. }
            | Inst::VSxtl { .. }
            | Inst::VZip { .. }
            | Inst::VPack4 { .. }
            | Inst::VUnpack4 { .. } => InstClass::VAlu,
            Inst::Camp { .. } => InstClass::Camp,
        }
    }

    /// Multiply-accumulate work performed by this instruction, counted in
    /// scalar MAC operations (used for GOPS accounting).
    pub fn macs(&self) -> u64 {
        match self {
            Inst::VBin { op: VOp::Mla, ty, .. } => ty.lanes() as u64,
            Inst::VBin { op: VOp::Mul, ty, .. } => ty.lanes() as u64 / 2, // mul only, no add
            Inst::VMull { .. } => 32,
            Inst::Smmla { .. } => 4 * 2 * 2 * 8, // 4 segments × 2×2 × k=8
            Inst::Camp { mode, .. } => mode.macs_per_issue() as u64,
            Inst::Mul { .. } => 1,
            _ => 0,
        }
    }
}

/// A finished, branch-resolved program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
}

impl Program {
    /// Create a program from resolved instructions.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Program { name: name.into(), insts }
    }

    /// Program name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{S, V};

    #[test]
    fn elem_type_lane_geometry() {
        assert_eq!(ElemType::I8.lanes(), 64);
        assert_eq!(ElemType::I16.lanes(), 32);
        assert_eq!(ElemType::I32.lanes(), 16);
        assert_eq!(ElemType::F32.lanes(), 16);
        assert_eq!(ElemType::I8.bytes(), 1);
        assert_eq!(ElemType::F32.bytes(), 4);
    }

    #[test]
    fn camp_mode_geometry() {
        assert_eq!(CampMode::I8.k_per_issue(), 16);
        assert_eq!(CampMode::I4.k_per_issue(), 32);
        assert_eq!(CampMode::I8.macs_per_issue(), 256);
        assert_eq!(CampMode::I4.macs_per_issue(), 512);
    }

    #[test]
    fn classification() {
        assert_eq!(Inst::Nop.class(), InstClass::ScalarAlu);
        assert_eq!(Inst::VLoad { vd: V(0), base: S(1), offset: 0 }.class(), InstClass::VLoad);
        assert_eq!(
            Inst::VBin { op: VOp::Mla, ty: ElemType::I32, vd: V(0), vs1: V(1), vs2: V(2) }.class(),
            InstClass::VMul
        );
        assert_eq!(
            Inst::VBin { op: VOp::Add, ty: ElemType::I32, vd: V(0), vs1: V(1), vs2: V(2) }.class(),
            InstClass::VAlu
        );
        assert_eq!(
            Inst::Camp { mode: CampMode::I8, vd: V(0), vs1: V(1), vs2: V(2) }.class(),
            InstClass::Camp
        );
        assert!(InstClass::Camp.is_vector());
        assert!(!InstClass::ScalarAlu.is_vector());
    }

    #[test]
    fn mac_accounting() {
        let camp8 = Inst::Camp { mode: CampMode::I8, vd: V(0), vs1: V(1), vs2: V(2) };
        let camp4 = Inst::Camp { mode: CampMode::I4, vd: V(0), vs1: V(1), vs2: V(2) };
        assert_eq!(camp8.macs(), 256);
        assert_eq!(camp4.macs(), 512);
        let mla32 = Inst::VBin { op: VOp::Mla, ty: ElemType::I32, vd: V(0), vs1: V(1), vs2: V(2) };
        assert_eq!(mla32.macs(), 16);
        let smmla = Inst::Smmla { vd: V(0), vs1: V(1), vs2: V(2) };
        assert_eq!(smmla.macs(), 128);
    }

    #[test]
    fn program_accessors() {
        let p = Program::new("p", vec![Inst::Nop, Inst::Nop]);
        assert_eq!(p.name(), "p");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(Program::default().is_empty());
    }
}
