//! Textual disassembly of VVA instructions and programs.
//!
//! Gives simulator traces and debugging dumps a readable assembly form;
//! the syntax mirrors the `Assembler` helper names.

use crate::inst::{BranchCond, Inst, Program};
use std::fmt::Write as _;

/// Render one instruction as assembly text.
pub fn disassemble(inst: &Inst) -> String {
    match *inst {
        Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
        Inst::Addi { rd, rs, imm } => {
            if imm == 0 {
                format!("mv {rd}, {rs}")
            } else {
                format!("addi {rd}, {rs}, {imm}")
            }
        }
        Inst::Add { rd, rs1, rs2 } => format!("add {rd}, {rs1}, {rs2}"),
        Inst::Sub { rd, rs1, rs2 } => format!("sub {rd}, {rs1}, {rs2}"),
        Inst::Mul { rd, rs1, rs2 } => format!("mul {rd}, {rs1}, {rs2}"),
        Inst::Slli { rd, rs, sh } => format!("slli {rd}, {rs}, {sh}"),
        Inst::Srli { rd, rs, sh } => format!("srli {rd}, {rs}, {sh}"),
        Inst::Andi { rd, rs, imm } => format!("andi {rd}, {rs}, {imm:#x}"),
        Inst::Branch { cond, rs1, rs2, target } => {
            let op = match cond {
                BranchCond::Eq => "beq",
                BranchCond::Ne => "bne",
                BranchCond::Lt => "blt",
                BranchCond::Ge => "bge",
            };
            format!("{op} {rs1}, {rs2}, @{target}")
        }
        Inst::LoadS { rd, base, offset, width } => {
            let op = match width {
                1 => "lb",
                2 => "lh",
                4 => "lw",
                _ => "ld",
            };
            format!("{op} {rd}, {offset}({base})")
        }
        Inst::StoreS { rs, base, offset, width } => {
            let op = match width {
                1 => "sb",
                2 => "sh",
                4 => "sw",
                _ => "sd",
            };
            format!("{op} {rs}, {offset}({base})")
        }
        Inst::Nop => "nop".to_string(),
        Inst::VLoad { vd, base, offset } => format!("vload {vd}, {offset}({base})"),
        Inst::VStore { vs, base, offset } => format!("vstore {vs}, {offset}({base})"),
        Inst::VLoadRep { ty, vd, base, offset } => {
            format!("vload_rep.{ty} {vd}, {offset}({base})")
        }
        Inst::VDup { ty, vd, rs } => format!("vdup.{ty} {vd}, {rs}"),
        Inst::VZero { vd } => format!("vzero {vd}"),
        Inst::VBin { op, ty, vd, vs1, vs2 } => format!("{op}.{ty} {vd}, {vs1}, {vs2}"),
        Inst::VMull { vd, vs1, vs2, hi } => {
            format!("vmull.{} {vd}, {vs1}, {vs2}", if hi { "hi" } else { "lo" })
        }
        Inst::VAdalp { vd, vs } => format!("vadalp {vd}, {vs}"),
        Inst::VSxtl { vd, vs, part } => format!("vsxtl {vd}, {vs}, #{part}"),
        Inst::VZip { vd, vs1, vs2, granule, hi } => {
            format!("vzip{}.g{granule} {vd}, {vs1}, {vs2}", if hi { "2" } else { "1" })
        }
        Inst::VPack4 { vd, vs1, vs2 } => format!("vpack4 {vd}, {vs1}, {vs2}"),
        Inst::VUnpack4 { vd, vs, hi } => {
            format!("vunpack4.{} {vd}, {vs}", if hi { "hi" } else { "lo" })
        }
        Inst::Smmla { vd, vs1, vs2 } => format!("smmla {vd}, {vs1}, {vs2}"),
        Inst::Camp { mode, vd, vs1, vs2 } => format!("camp.{mode} {vd}, {vs1}, {vs2}"),
    }
}

/// Render a whole program with instruction indices (branch targets are
/// `@index` references).
pub fn disassemble_program(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; program `{}` ({} insts)", prog.name(), prog.len());
    for (i, inst) in prog.insts().iter().enumerate() {
        let _ = writeln!(out, "{i:>5}: {}", disassemble(inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::{CampMode, ElemType, VOp};
    use crate::reg::{S, V};

    #[test]
    fn representative_forms() {
        assert_eq!(disassemble(&Inst::Li { rd: S(1), imm: -3 }), "li x1, -3");
        assert_eq!(disassemble(&Inst::Addi { rd: S(2), rs: S(3), imm: 0 }), "mv x2, x3");
        assert_eq!(
            disassemble(&Inst::Camp { mode: CampMode::I4, vd: V(2), vs1: V(0), vs2: V(1) }),
            "camp.s4 v2, v0, v1"
        );
        assert_eq!(
            disassemble(&Inst::VBin {
                op: VOp::Mla,
                ty: ElemType::F32,
                vd: V(8),
                vs1: V(1),
                vs2: V(2)
            }),
            "vmla.f32 v8, v1, v2"
        );
        assert_eq!(
            disassemble(&Inst::LoadS { rd: S(5), base: S(6), offset: -8, width: 4 }),
            "lw x5, -8(x6)"
        );
        assert_eq!(
            disassemble(&Inst::VZip { vd: V(1), vs1: V(2), vs2: V(3), granule: 16, hi: true }),
            "vzip2.g16 v1, v2, v3"
        );
    }

    #[test]
    fn every_instruction_form_disassembles_nonempty() {
        let mut a = Assembler::new("all");
        a.li(S(1), 1);
        a.addi(S(1), S(1), 2);
        a.add(S(1), S(1), S(2));
        a.sub(S(1), S(1), S(2));
        a.mul(S(1), S(1), S(2));
        a.slli(S(1), S(1), 3);
        a.srli(S(1), S(1), 3);
        a.andi(S(1), S(1), 0xf);
        a.nop();
        a.label("x");
        a.beq(S(1), S(2), "x");
        a.lb(S(1), S(2), 0);
        a.store_s(S(1), S(2), 0, 8);
        a.vload(V(0), S(1), 0);
        a.vstore(V(0), S(1), 0);
        a.vload_rep(ElemType::I32, V(0), S(1), 4);
        a.vdup(ElemType::I8, V(0), S(1));
        a.vzero(V(0));
        a.vbin(VOp::Add, ElemType::I16, V(0), V(1), V(2));
        a.vmull(V(0), V(1), V(2), true);
        a.vadalp(V(0), V(1));
        a.vsxtl(V(0), V(1), 2);
        a.vzip(V(0), V(1), V(2), 4, false);
        a.vpack4(V(0), V(1), V(2));
        a.vunpack4(V(0), V(1), false);
        a.smmla(V(0), V(1), V(2));
        a.camp(CampMode::I8, V(0), V(1), V(2));
        let p = a.finish();
        for inst in p.insts() {
            assert!(!disassemble(inst).is_empty());
        }
        let text = disassemble_program(&p);
        assert!(text.contains("camp.s8 v0, v1, v2"));
        assert!(text.lines().count() > p.len());
    }

    #[test]
    fn branch_targets_are_indices() {
        let mut a = Assembler::new("b");
        a.label("top");
        a.bne(S(1), S(0), "top");
        let p = a.finish();
        assert_eq!(disassemble(&p.insts()[0]), "bne x1, x0, @0");
    }
}
