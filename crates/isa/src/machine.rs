//! Functional execution of VVA programs.
//!
//! [`Machine`] holds the architectural state (scalar/vector register files
//! and a flat byte-addressed memory) and executes instructions one at a
//! time. Timing is *not* modeled here — `camp-pipeline` wraps the machine
//! and assigns cycles to each retired instruction.

use crate::inst::{BranchCond, CampMode, ElemType, Inst, Program, VOp};
use crate::reg::{ScalarReg, VectorReg};
use crate::VLEN_BYTES;
use std::fmt;

/// A single architectural memory access, reported to the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address of the first byte touched.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u32,
    /// True for stores.
    pub is_store: bool,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy)]
pub struct StepOut {
    /// Index of the executed instruction in the program.
    pub index: u32,
    /// The instruction itself (copied out for the timing model).
    pub inst: Inst,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// True if a branch was taken.
    pub branch_taken: bool,
}

/// Execution error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fell outside the machine's memory.
    OutOfBounds {
        /// Offending byte address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
    },
    /// The step budget was exhausted before the program ended.
    StepLimit,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access out of bounds: addr={addr:#x} size={size}")
            }
            ExecError::StepLimit => f.write_str("step limit exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

fn sext4(n: u8) -> i8 {
    ((n << 4) as i8) >> 4
}

/// The architectural machine: 32 scalar regs, 32 vector regs, flat memory.
#[derive(Clone)]
pub struct Machine {
    x: [u64; 32],
    v: [[u8; VLEN_BYTES]; 32],
    mem: Vec<u8>,
    pc: u32,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("pc", &self.pc)
            .field("mem_bytes", &self.mem.len())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Create a machine with `mem_bytes` of zeroed memory.
    pub fn new(mem_bytes: usize) -> Self {
        Machine { x: [0; 32], v: [[0; VLEN_BYTES]; 32], mem: vec![0; mem_bytes], pc: 0 }
    }

    /// Reset the program counter (registers and memory are preserved so
    /// successive programs can share state, as the blocked-GeMM driver
    /// requires).
    pub fn rewind(&mut self) {
        self.pc = 0;
    }

    /// Current program counter (instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Memory size in bytes.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    /// Read a scalar register.
    pub fn x(&self, r: ScalarReg) -> u64 {
        if r.0 == 0 {
            0
        } else {
            self.x[r.index()]
        }
    }

    /// Write a scalar register (writes to `x0` are ignored).
    pub fn set_x(&mut self, r: ScalarReg, val: u64) {
        if r.0 != 0 {
            self.x[r.index()] = val;
        }
    }

    /// Read a vector register.
    pub fn v(&self, r: VectorReg) -> &[u8; VLEN_BYTES] {
        &self.v[r.index()]
    }

    /// Write a vector register.
    pub fn set_v(&mut self, r: VectorReg, val: [u8; VLEN_BYTES]) {
        self.v[r.index()] = val;
    }

    // ---- memory helpers (host-side setup / inspection) ----

    fn check(&self, addr: u64, size: u32) -> Result<usize, ExecError> {
        let a = addr as usize;
        if a.checked_add(size as usize).is_none_or(|end| end > self.mem.len()) {
            return Err(ExecError::OutOfBounds { addr, size });
        }
        Ok(a)
    }

    /// Borrow a memory range.
    ///
    /// # Panics
    /// Panics if out of bounds (host-side setup API).
    pub fn mem(&self, addr: u64, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// Mutably borrow a memory range.
    ///
    /// # Panics
    /// Panics if out of bounds (host-side setup API).
    pub fn mem_mut(&mut self, addr: u64, len: usize) -> &mut [u8] {
        &mut self.mem[addr as usize..addr as usize + len]
    }

    /// Write raw bytes at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        self.mem_mut(addr, bytes.len()).copy_from_slice(bytes);
    }

    /// Write an i8.
    pub fn write_i8(&mut self, addr: u64, val: i8) {
        self.mem[addr as usize] = val as u8;
    }
    /// Read an i8.
    pub fn read_i8(&self, addr: u64) -> i8 {
        self.mem[addr as usize] as i8
    }
    /// Write an i32 (little-endian).
    pub fn write_i32(&mut self, addr: u64, val: i32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }
    /// Read an i32 (little-endian).
    pub fn read_i32(&self, addr: u64) -> i32 {
        i32::from_le_bytes(self.mem(addr, 4).try_into().expect("4 bytes"))
    }
    /// Write an f32 (little-endian).
    pub fn write_f32(&mut self, addr: u64, val: f32) {
        self.write_bytes(addr, &val.to_le_bytes());
    }
    /// Read an f32 (little-endian).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_le_bytes(self.mem(addr, 4).try_into().expect("4 bytes"))
    }

    // ---- execution ----

    /// Execute the instruction at the current PC.
    ///
    /// Returns `Ok(None)` when the PC has run off the end of the program
    /// (normal termination).
    ///
    /// # Errors
    /// [`ExecError::OutOfBounds`] on a bad memory access.
    pub fn step(&mut self, prog: &Program) -> Result<Option<StepOut>, ExecError> {
        let insts = prog.insts();
        let idx = self.pc;
        let Some(&inst) = insts.get(idx as usize) else {
            return Ok(None);
        };
        let mut mem = None;
        let mut branch_taken = false;
        let mut next = idx + 1;

        match inst {
            Inst::Li { rd, imm } => self.set_x(rd, imm as u64),
            Inst::Addi { rd, rs, imm } => {
                let v = self.x(rs).wrapping_add(imm as u64);
                self.set_x(rd, v);
            }
            Inst::Add { rd, rs1, rs2 } => {
                let v = self.x(rs1).wrapping_add(self.x(rs2));
                self.set_x(rd, v);
            }
            Inst::Sub { rd, rs1, rs2 } => {
                let v = self.x(rs1).wrapping_sub(self.x(rs2));
                self.set_x(rd, v);
            }
            Inst::Mul { rd, rs1, rs2 } => {
                let v = self.x(rs1).wrapping_mul(self.x(rs2));
                self.set_x(rd, v);
            }
            Inst::Slli { rd, rs, sh } => {
                let v = self.x(rs) << sh;
                self.set_x(rd, v);
            }
            Inst::Srli { rd, rs, sh } => {
                let v = self.x(rs) >> sh;
                self.set_x(rd, v);
            }
            Inst::Andi { rd, rs, imm } => {
                let v = self.x(rs) & imm as u64;
                self.set_x(rd, v);
            }
            Inst::Nop => {}
            Inst::Branch { cond, rs1, rs2, target } => {
                let a = self.x(rs1) as i64;
                let b = self.x(rs2) as i64;
                let take = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => a < b,
                    BranchCond::Ge => a >= b,
                };
                if take {
                    next = target;
                    branch_taken = true;
                }
            }
            Inst::LoadS { rd, base, offset, width } => {
                let addr = self.x(base).wrapping_add(offset as u64);
                let a = self.check(addr, width as u32)?;
                let mut buf = [0u8; 8];
                buf[..width as usize].copy_from_slice(&self.mem[a..a + width as usize]);
                let raw = u64::from_le_bytes(buf);
                let bits = width as u32 * 8;
                let val = if bits == 64 {
                    raw
                } else {
                    // sign-extend
                    let shift = 64 - bits;
                    (((raw << shift) as i64) >> shift) as u64
                };
                self.set_x(rd, val);
                mem = Some(MemAccess { addr, size: width as u32, is_store: false });
            }
            Inst::StoreS { rs, base, offset, width } => {
                let addr = self.x(base).wrapping_add(offset as u64);
                let a = self.check(addr, width as u32)?;
                let bytes = self.x(rs).to_le_bytes();
                self.mem[a..a + width as usize].copy_from_slice(&bytes[..width as usize]);
                mem = Some(MemAccess { addr, size: width as u32, is_store: true });
            }
            Inst::VLoad { vd, base, offset } => {
                let addr = self.x(base).wrapping_add(offset as u64);
                let a = self.check(addr, VLEN_BYTES as u32)?;
                let mut buf = [0u8; VLEN_BYTES];
                buf.copy_from_slice(&self.mem[a..a + VLEN_BYTES]);
                self.set_v(vd, buf);
                mem = Some(MemAccess { addr, size: VLEN_BYTES as u32, is_store: false });
            }
            Inst::VStore { vs, base, offset } => {
                let addr = self.x(base).wrapping_add(offset as u64);
                let a = self.check(addr, VLEN_BYTES as u32)?;
                let src = self.v[vs.index()];
                self.mem[a..a + VLEN_BYTES].copy_from_slice(&src);
                mem = Some(MemAccess { addr, size: VLEN_BYTES as u32, is_store: true });
            }
            Inst::VLoadRep { ty, vd, base, offset } => {
                let addr = self.x(base).wrapping_add(offset as u64);
                let w = ty.bytes();
                let a = self.check(addr, w as u32)?;
                let mut elem = [0u8; 4];
                elem[..w].copy_from_slice(&self.mem[a..a + w]);
                let mut out = [0u8; VLEN_BYTES];
                for c in out.chunks_exact_mut(w) {
                    c.copy_from_slice(&elem[..w]);
                }
                self.set_v(vd, out);
                mem = Some(MemAccess { addr, size: w as u32, is_store: false });
            }
            Inst::VDup { ty, vd, rs } => {
                let s = self.x(rs);
                let mut out = [0u8; VLEN_BYTES];
                match ty {
                    ElemType::I8 => out.fill(s as u8),
                    ElemType::I16 => {
                        for c in out.chunks_exact_mut(2) {
                            c.copy_from_slice(&(s as u16).to_le_bytes());
                        }
                    }
                    ElemType::I32 | ElemType::F32 => {
                        for c in out.chunks_exact_mut(4) {
                            c.copy_from_slice(&(s as u32).to_le_bytes());
                        }
                    }
                }
                self.set_v(vd, out);
            }
            Inst::VZero { vd } => self.set_v(vd, [0u8; VLEN_BYTES]),
            Inst::VBin { op, ty, vd, vs1, vs2 } => self.exec_vbin(op, ty, vd, vs1, vs2),
            Inst::VMull { vd, vs1, vs2, hi } => {
                let a = self.v[vs1.index()];
                let b = self.v[vs2.index()];
                let base = if hi { 32 } else { 0 };
                let mut out = [0u8; VLEN_BYTES];
                for i in 0..32 {
                    let p = (a[base + i] as i8 as i16).wrapping_mul(b[base + i] as i8 as i16);
                    out[i * 2..i * 2 + 2].copy_from_slice(&p.to_le_bytes());
                }
                self.set_v(vd, out);
            }
            Inst::VAdalp { vd, vs } => {
                let s = self.v[vs.index()];
                let mut d = self.v[vd.index()];
                for i in 0..16 {
                    let lo = i16::from_le_bytes([s[i * 4], s[i * 4 + 1]]) as i32;
                    let hi = i16::from_le_bytes([s[i * 4 + 2], s[i * 4 + 3]]) as i32;
                    let acc = i32::from_le_bytes(d[i * 4..i * 4 + 4].try_into().expect("4"));
                    let r = acc.wrapping_add(lo).wrapping_add(hi);
                    d[i * 4..i * 4 + 4].copy_from_slice(&r.to_le_bytes());
                }
                self.set_v(vd, d);
            }
            Inst::VSxtl { vd, vs, part } => {
                let s = self.v[vs.index()];
                let mut out = [0u8; VLEN_BYTES];
                let base = part as usize * 16;
                for i in 0..16 {
                    let v = s[base + i] as i8 as i32;
                    out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
                }
                self.set_v(vd, out);
            }
            Inst::VZip { vd, vs1, vs2, granule, hi } => {
                let a = self.v[vs1.index()];
                let b = self.v[vs2.index()];
                let g = granule as usize;
                let half_chunks = VLEN_BYTES / g / 2;
                let off = if hi { half_chunks } else { 0 };
                let mut out = [0u8; VLEN_BYTES];
                for i in 0..half_chunks {
                    let src = (off + i) * g;
                    out[2 * i * g..2 * i * g + g].copy_from_slice(&a[src..src + g]);
                    out[(2 * i + 1) * g..(2 * i + 1) * g + g].copy_from_slice(&b[src..src + g]);
                }
                self.set_v(vd, out);
            }
            Inst::VPack4 { vd, vs1, vs2 } => {
                let a = self.v[vs1.index()];
                let b = self.v[vs2.index()];
                let mut out = [0u8; VLEN_BYTES];
                for i in 0..32 {
                    out[i] = (a[2 * i] & 0x0f) | (a[2 * i + 1] << 4);
                    out[32 + i] = (b[2 * i] & 0x0f) | (b[2 * i + 1] << 4);
                }
                self.set_v(vd, out);
            }
            Inst::VUnpack4 { vd, vs, hi } => {
                let s = self.v[vs.index()];
                let off = if hi { 32 } else { 0 };
                let mut out = [0u8; VLEN_BYTES];
                for i in 0..32 {
                    out[2 * i] = sext4(s[off + i] & 0x0f) as u8;
                    out[2 * i + 1] = sext4(s[off + i] >> 4) as u8;
                }
                self.set_v(vd, out);
            }
            Inst::Smmla { vd, vs1, vs2 } => {
                let a = self.v[vs1.index()];
                let b = self.v[vs2.index()];
                let mut d = self.v[vd.index()];
                for seg in 0..4 {
                    let s = seg * 16;
                    for i in 0..2 {
                        for j in 0..2 {
                            let mut acc = 0i32;
                            for k in 0..8 {
                                let av = a[s + i * 8 + k] as i8 as i32;
                                let bv = b[s + j * 8 + k] as i8 as i32;
                                acc = acc.wrapping_add(av.wrapping_mul(bv));
                            }
                            let o = s + (i * 2 + j) * 4;
                            let prev = i32::from_le_bytes(d[o..o + 4].try_into().expect("4"));
                            let r = prev.wrapping_add(acc);
                            d[o..o + 4].copy_from_slice(&r.to_le_bytes());
                        }
                    }
                }
                self.set_v(vd, d);
            }
            Inst::Camp { mode, vd, vs1, vs2 } => {
                let a = self.v[vs1.index()];
                let b = self.v[vs2.index()];
                let mut d = self.v[vd.index()];
                let tile = camp_outer_product(mode, &a, &b);
                for i in 0..4 {
                    for j in 0..4 {
                        let o = (i * 4 + j) * 4;
                        let prev = i32::from_le_bytes(d[o..o + 4].try_into().expect("4"));
                        let r = prev.wrapping_add(tile[i][j]);
                        d[o..o + 4].copy_from_slice(&r.to_le_bytes());
                    }
                }
                self.set_v(vd, d);
            }
        }

        self.pc = next;
        Ok(Some(StepOut { index: idx, inst, mem, branch_taken }))
    }

    fn exec_vbin(&mut self, op: VOp, ty: ElemType, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        let a = self.v[vs1.index()];
        let b = self.v[vs2.index()];
        let mut d = self.v[vd.index()];
        match ty {
            ElemType::I8 => {
                for i in 0..VLEN_BYTES {
                    let x = a[i] as i8;
                    let y = b[i] as i8;
                    let acc = d[i] as i8;
                    d[i] = apply_int(op, x as i64, y as i64, acc as i64) as u8;
                }
            }
            ElemType::I16 => {
                for i in 0..32 {
                    let x = i16::from_le_bytes([a[i * 2], a[i * 2 + 1]]) as i64;
                    let y = i16::from_le_bytes([b[i * 2], b[i * 2 + 1]]) as i64;
                    let acc = i16::from_le_bytes([d[i * 2], d[i * 2 + 1]]) as i64;
                    let r = apply_int(op, x, y, acc) as i16;
                    d[i * 2..i * 2 + 2].copy_from_slice(&r.to_le_bytes());
                }
            }
            ElemType::I32 => {
                for i in 0..16 {
                    let x = i32::from_le_bytes(a[i * 4..i * 4 + 4].try_into().expect("4")) as i64;
                    let y = i32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4")) as i64;
                    let acc = i32::from_le_bytes(d[i * 4..i * 4 + 4].try_into().expect("4")) as i64;
                    let r = apply_int(op, x, y, acc) as i32;
                    d[i * 4..i * 4 + 4].copy_from_slice(&r.to_le_bytes());
                }
            }
            ElemType::F32 => {
                for i in 0..16 {
                    let x = f32::from_le_bytes(a[i * 4..i * 4 + 4].try_into().expect("4"));
                    let y = f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4"));
                    let acc = f32::from_le_bytes(d[i * 4..i * 4 + 4].try_into().expect("4"));
                    let r = match op {
                        VOp::Add => x + y,
                        VOp::Sub => x - y,
                        VOp::Mul => x * y,
                        VOp::Mla => acc + x * y,
                    };
                    d[i * 4..i * 4 + 4].copy_from_slice(&r.to_le_bytes());
                }
            }
        }
        self.set_v(vd, d);
    }

    /// Run `prog` from the current PC until completion or `max_steps`.
    ///
    /// Returns the number of instructions retired.
    ///
    /// # Errors
    /// [`ExecError::StepLimit`] if the budget is exhausted;
    /// [`ExecError::OutOfBounds`] on a bad access.
    pub fn run(&mut self, prog: &Program, max_steps: u64) -> Result<u64, ExecError> {
        self.rewind();
        let mut steps = 0;
        while steps < max_steps {
            if self.step(prog)?.is_none() {
                return Ok(steps);
            }
            steps += 1;
        }
        // one more probe: finished exactly at the limit?
        if self.pc as usize >= prog.len() {
            Ok(steps)
        } else {
            Err(ExecError::StepLimit)
        }
    }
}

#[inline]
fn apply_int(op: VOp, x: i64, y: i64, acc: i64) -> i64 {
    match op {
        VOp::Add => x.wrapping_add(y),
        VOp::Sub => x.wrapping_sub(y),
        VOp::Mul => x.wrapping_mul(y),
        VOp::Mla => acc.wrapping_add(x.wrapping_mul(y)),
    }
}

/// Compute the CAMP outer-product tile for one register pair.
///
/// `a` is the 4×`k` column-major block (k = 16 for i8, 32 for i4); `b` is
/// the `k`×4 row-major block. Returns the 4×4 i32 product (not yet
/// accumulated). This is the architectural semantics of the hardware in
/// Fig. 8 of the paper; `camp-core` models the same computation at the
/// lane/multiplier level and is tested for equivalence against this.
pub fn camp_outer_product(
    mode: CampMode,
    a: &[u8; VLEN_BYTES],
    b: &[u8; VLEN_BYTES],
) -> [[i32; 4]; 4] {
    let mut tile = [[0i32; 4]; 4];
    match mode {
        CampMode::I8 => {
            for l in 0..16 {
                for i in 0..4 {
                    let av = a[l * 4 + i] as i8 as i32;
                    for j in 0..4 {
                        let bv = b[l * 4 + j] as i8 as i32;
                        tile[i][j] = tile[i][j].wrapping_add(av.wrapping_mul(bv));
                    }
                }
            }
        }
        CampMode::I4 => {
            let nib = |buf: &[u8; VLEN_BYTES], n: usize| -> i32 {
                let byte = buf[n / 2];
                let raw = if n.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 };
                sext4(raw) as i32
            };
            for l in 0..32 {
                for i in 0..4 {
                    let av = nib(a, l * 4 + i);
                    for j in 0..4 {
                        let bv = nib(b, l * 4 + j);
                        tile[i][j] = tile[i][j].wrapping_add(av.wrapping_mul(bv));
                    }
                }
            }
        }
    }
    tile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::{S, V};

    fn machine() -> Machine {
        Machine::new(1 << 16)
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut m = machine();
        m.set_x(S(0), 99);
        assert_eq!(m.x(S(0)), 0);
    }

    #[test]
    fn scalar_arith_loop() {
        // sum 1..=10 via a loop
        let mut a = Assembler::new("sum");
        a.li(S(1), 0); // acc
        a.li(S(2), 1); // i
        a.li(S(3), 11); // bound
        a.label("top");
        a.add(S(1), S(1), S(2));
        a.addi(S(2), S(2), 1);
        a.bne(S(2), S(3), "top");
        let p = a.finish();
        let mut m = machine();
        m.run(&p, 1000).unwrap();
        assert_eq!(m.x(S(1)), 55);
    }

    #[test]
    fn shifts_and_masks() {
        let mut a = Assembler::new("t");
        a.li(S(1), 0b1011);
        a.slli(S(2), S(1), 4);
        a.srli(S(3), S(2), 2);
        a.andi(S(4), S(3), 0xf);
        let p = a.finish();
        let mut m = machine();
        m.run(&p, 100).unwrap();
        assert_eq!(m.x(S(2)), 0b1011_0000);
        assert_eq!(m.x(S(3)), 0b10_1100);
        assert_eq!(m.x(S(4)), 0b1100);
    }

    #[test]
    fn scalar_load_sign_extends() {
        let mut m = machine();
        m.write_i8(8, -5);
        let mut a = Assembler::new("t");
        a.li(S(1), 8);
        a.lb(S(2), S(1), 0);
        let p = a.finish();
        m.run(&p, 10).unwrap();
        assert_eq!(m.x(S(2)) as i64, -5);
    }

    #[test]
    fn scalar_store_width() {
        let mut m = machine();
        let mut a = Assembler::new("t");
        a.li(S(1), 0x11223344_i64);
        a.li(S(2), 16);
        a.store_s(S(1), S(2), 0, 2);
        let p = a.finish();
        m.run(&p, 10).unwrap();
        assert_eq!(m.mem(16, 4), &[0x44, 0x33, 0x00, 0x00]);
    }

    #[test]
    fn vector_roundtrip_and_add() {
        let mut m = machine();
        for i in 0..16 {
            m.write_i32(i as u64 * 4, i + 1);
        }
        let mut a = Assembler::new("t");
        a.vload(V(0), S(0), 0);
        a.vadd_i32(V(1), V(0), V(0));
        a.vstore(V(1), S(0), 128);
        let p = a.finish();
        m.run(&p, 10).unwrap();
        for i in 0..16 {
            assert_eq!(m.read_i32(128 + i as u64 * 4), 2 * (i + 1));
        }
    }

    #[test]
    fn vdup_and_mla_i32() {
        let mut m = machine();
        for i in 0..16 {
            m.write_i32(i as u64 * 4, i);
        }
        let mut a = Assembler::new("t");
        a.vload(V(0), S(0), 0);
        a.vzero(V(2));
        a.li(S(1), 3);
        a.vdup(ElemType::I32, V(1), S(1));
        a.vmla_i32(V(2), V(0), V(1));
        a.vmla_i32(V(2), V(0), V(1));
        a.vstore(V(2), S(0), 256);
        let p = a.finish();
        m.run(&p, 20).unwrap();
        for i in 0..16 {
            assert_eq!(m.read_i32(256 + i as u64 * 4), 6 * i);
        }
    }

    #[test]
    fn i8_mla_truncates_like_handv_int8() {
        // 100 * 100 = 10000 -> wraps in i8: this is the documented
        // overflow-unsafe baseline behaviour.
        let mut m = machine();
        let mut a = Assembler::new("t");
        a.li(S(1), 100);
        a.vdup(ElemType::I8, V(0), S(1));
        a.vzero(V(1));
        a.vmla_i8(V(1), V(0), V(0));
        let p = a.finish();
        m.run(&p, 10).unwrap();
        assert_eq!(m.v(V(1))[0] as i8, ((10000i32 & 0xff) as i8));
    }

    #[test]
    fn f32_fma() {
        let mut m = machine();
        for i in 0..16 {
            m.write_f32(i as u64 * 4, i as f32);
        }
        let mut a = Assembler::new("t");
        a.vload(V(0), S(0), 0);
        a.vzero(V(1));
        a.vfma_f32(V(1), V(0), V(0));
        a.vstore(V(1), S(0), 512);
        let p = a.finish();
        m.run(&p, 10).unwrap();
        for i in 0..16 {
            assert_eq!(m.read_f32(512 + i as u64 * 4), (i * i) as f32);
        }
    }

    #[test]
    fn vmull_widens() {
        let mut m = machine();
        let mut a = [0u8; VLEN_BYTES];
        let mut b = [0u8; VLEN_BYTES];
        a[0] = (-7i8) as u8;
        b[0] = 9;
        a[33] = 11; // high half, lane 1
        b[33] = (-12i8) as u8;
        m.set_v(V(0), a);
        m.set_v(V(1), b);
        let mut asm = Assembler::new("t");
        asm.vmull(V(2), V(0), V(1), false);
        asm.vmull(V(3), V(0), V(1), true);
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        let lo = i16::from_le_bytes([m.v(V(2))[0], m.v(V(2))[1]]);
        assert_eq!(lo, -63);
        let hi = i16::from_le_bytes([m.v(V(3))[2], m.v(V(3))[3]]);
        assert_eq!(hi, -132);
    }

    #[test]
    fn vadalp_pairwise_accumulate() {
        let mut m = machine();
        let mut s = [0u8; VLEN_BYTES];
        // i16 lanes 0,1 = 5, -3 -> i32 lane 0 += 2
        s[0..2].copy_from_slice(&5i16.to_le_bytes());
        s[2..4].copy_from_slice(&(-3i16).to_le_bytes());
        m.set_v(V(0), s);
        let mut d = [0u8; VLEN_BYTES];
        d[0..4].copy_from_slice(&100i32.to_le_bytes());
        m.set_v(V(1), d);
        let mut asm = Assembler::new("t");
        asm.vadalp(V(1), V(0));
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        let r = i32::from_le_bytes(m.v(V(1))[0..4].try_into().unwrap());
        assert_eq!(r, 102);
    }

    #[test]
    fn vsxtl_parts() {
        let mut m = machine();
        let mut s = [0u8; VLEN_BYTES];
        s[16] = (-2i8) as u8; // part 1, lane 0
        m.set_v(V(0), s);
        let mut asm = Assembler::new("t");
        asm.vsxtl(V(1), V(0), 1);
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        assert_eq!(i32::from_le_bytes(m.v(V(1))[0..4].try_into().unwrap()), -2);
    }

    #[test]
    fn vzip_interleaves_bytes() {
        let mut m = machine();
        let mut a = [0u8; VLEN_BYTES];
        let mut b = [0u8; VLEN_BYTES];
        for i in 0..VLEN_BYTES {
            a[i] = i as u8;
            b[i] = 100 + i as u8;
        }
        m.set_v(V(0), a);
        m.set_v(V(1), b);
        let mut asm = Assembler::new("t");
        asm.vzip(V(2), V(0), V(1), 1, false);
        asm.vzip(V(3), V(0), V(1), 1, true);
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        assert_eq!(m.v(V(2))[0], 0);
        assert_eq!(m.v(V(2))[1], 100);
        assert_eq!(m.v(V(2))[2], 1);
        assert_eq!(m.v(V(3))[0], 32);
        assert_eq!(m.v(V(3))[1], 132);
    }

    #[test]
    fn pack_unpack_nibbles_roundtrip() {
        let mut m = machine();
        let mut a = [0u8; VLEN_BYTES];
        let mut b = [0u8; VLEN_BYTES];
        for i in 0..VLEN_BYTES {
            a[i] = ((i as i32 % 16) - 8) as i8 as u8;
            b[i] = (7 - (i as i32 % 16)) as i8 as u8;
        }
        m.set_v(V(0), a);
        m.set_v(V(1), b);
        let mut asm = Assembler::new("t");
        asm.vpack4(V(2), V(0), V(1));
        asm.vunpack4(V(3), V(2), false);
        asm.vunpack4(V(4), V(2), true);
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        assert_eq!(m.v(V(3)), m.v(V(0)));
        assert_eq!(m.v(V(4)), m.v(V(1)));
    }

    #[test]
    fn smmla_matches_reference() {
        let mut m = machine();
        let mut a = [0u8; VLEN_BYTES];
        let mut b = [0u8; VLEN_BYTES];
        for i in 0..VLEN_BYTES {
            a[i] = ((i as i32 * 7 % 256) - 128) as i8 as u8;
            b[i] = ((i as i32 * 13 % 256) - 128) as i8 as u8;
        }
        m.set_v(V(0), a);
        m.set_v(V(1), b);
        m.set_v(V(2), [0u8; VLEN_BYTES]);
        let mut asm = Assembler::new("t");
        asm.smmla(V(2), V(0), V(1));
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        // reference for segment 0, i=1, j=0
        let mut acc = 0i32;
        for k in 0..8 {
            acc += (a[8 + k] as i8 as i32) * (b[k] as i8 as i32);
        }
        let got = i32::from_le_bytes(m.v(V(2))[8..12].try_into().unwrap());
        assert_eq!(got, acc);
    }

    #[test]
    fn camp_i8_matches_reference_matmul() {
        let mut m = machine();
        let mut a = [0u8; VLEN_BYTES];
        let mut b = [0u8; VLEN_BYTES];
        for i in 0..VLEN_BYTES {
            a[i] = ((i as i32 * 31 % 256) - 128) as i8 as u8;
            b[i] = ((i as i32 * 17 % 256) - 128) as i8 as u8;
        }
        m.set_v(V(0), a);
        m.set_v(V(1), b);
        m.set_v(V(2), [0u8; VLEN_BYTES]);
        let mut asm = Assembler::new("t");
        asm.camp(CampMode::I8, V(2), V(0), V(1));
        asm.camp(CampMode::I8, V(2), V(0), V(1)); // accumulate twice
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        // reference: C[i][j] = 2 * sum_l A[i][l] * B[l][j]
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0i32;
                for l in 0..16 {
                    acc += (a[l * 4 + i] as i8 as i32) * (b[l * 4 + j] as i8 as i32);
                }
                let got = i32::from_le_bytes(
                    m.v(V(2))[(i * 4 + j) * 4..(i * 4 + j) * 4 + 4].try_into().unwrap(),
                );
                assert_eq!(got, 2 * acc, "tile ({i},{j})");
            }
        }
    }

    #[test]
    fn camp_i4_matches_reference_matmul() {
        let mut m = machine();
        let mut a = [0u8; VLEN_BYTES];
        let mut b = [0u8; VLEN_BYTES];
        for i in 0..VLEN_BYTES {
            a[i] = (i as u32 * 39 % 256) as u8;
            b[i] = (i as u32 * 91 % 256) as u8;
        }
        m.set_v(V(0), a);
        m.set_v(V(1), b);
        m.set_v(V(2), [0u8; VLEN_BYTES]);
        let mut asm = Assembler::new("t");
        asm.camp(CampMode::I4, V(2), V(0), V(1));
        let p = asm.finish();
        m.run(&p, 10).unwrap();
        let tile = camp_outer_product(CampMode::I4, &a, &b);
        for i in 0..4 {
            for j in 0..4 {
                let got = i32::from_le_bytes(
                    m.v(V(2))[(i * 4 + j) * 4..(i * 4 + j) * 4 + 4].try_into().unwrap(),
                );
                assert_eq!(got, tile[i][j]);
            }
        }
    }

    #[test]
    fn out_of_bounds_load_is_error() {
        let mut m = Machine::new(64);
        let mut asm = Assembler::new("t");
        asm.li(S(1), 32);
        asm.vload(V(0), S(1), 0); // 32+64 > 64
        let p = asm.finish();
        let err = m.run(&p, 10).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn step_limit_is_error() {
        let mut asm = Assembler::new("t");
        asm.label("spin");
        asm.beq(S(0), S(0), "spin");
        let p = asm.finish();
        let mut m = machine();
        assert_eq!(m.run(&p, 5).unwrap_err(), ExecError::StepLimit);
    }

    #[test]
    fn branch_ge_and_lt() {
        let mut asm = Assembler::new("t");
        asm.li(S(1), -3);
        asm.li(S(2), 2);
        asm.li(S(3), 0);
        asm.blt(S(1), S(2), "took");
        asm.li(S(3), 111); // skipped
        asm.label("took");
        asm.bge(S(2), S(1), "end");
        asm.li(S(3), 222); // skipped
        asm.label("end");
        let p = asm.finish();
        let mut m = machine();
        m.run(&p, 100).unwrap();
        assert_eq!(m.x(S(3)), 0);
    }

    #[test]
    fn rewind_preserves_state() {
        let mut asm = Assembler::new("t");
        asm.addi(S(1), S(1), 5);
        let p = asm.finish();
        let mut m = machine();
        m.run(&p, 10).unwrap();
        m.run(&p, 10).unwrap();
        assert_eq!(m.x(S(1)), 10);
    }
}
