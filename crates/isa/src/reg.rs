//! Architectural register names.
//!
//! The machine has 32 scalar registers (`x0`–`x31`, 64-bit; `x0` is
//! hardwired to zero as in RISC-V) and 32 vector registers (`v0`–`v31`,
//! 512-bit). Newtypes keep scalar and vector operands from being mixed up
//! at kernel-construction time.

use std::fmt;

/// A scalar (64-bit) register index. `x0` reads as zero and ignores writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScalarReg(pub u8);

/// A vector (512-bit) register index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VectorReg(pub u8);

/// Shorthand constructor for [`ScalarReg`].
///
/// # Panics
/// Panics if `i >= 32`.
#[allow(non_snake_case)]
pub const fn S(i: u8) -> ScalarReg {
    assert!(i < 32, "scalar register index out of range");
    ScalarReg(i)
}

/// Shorthand constructor for [`VectorReg`].
///
/// # Panics
/// Panics if `i >= 32`.
#[allow(non_snake_case)]
pub const fn V(i: u8) -> VectorReg {
    assert!(i < 32, "vector register index out of range");
    VectorReg(i)
}

impl ScalarReg {
    /// The always-zero register.
    pub const ZERO: ScalarReg = ScalarReg(0);

    /// Index as usize for register-file addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VectorReg {
    /// Index as usize for register-file addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ScalarReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for VectorReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(S(3).to_string(), "x3");
        assert_eq!(V(17).to_string(), "v17");
    }

    #[test]
    fn zero_register_is_x0() {
        assert_eq!(ScalarReg::ZERO, S(0));
    }

    #[test]
    #[should_panic]
    fn scalar_out_of_range_panics() {
        let _ = S(32);
    }

    #[test]
    #[should_panic]
    fn vector_out_of_range_panics() {
        let _ = V(32);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(S(1) < S(2));
        assert!(V(30) > V(0));
    }
}
