//! A small assembler: builds [`Program`]s with symbolic labels.
//!
//! Kernel builders in `camp-gemm` use this to write GotoBLAS micro-kernels
//! the same way the paper's authors wrote SVE intrinsics / RISC-V inline
//! assembly.

use crate::inst::{BranchCond, CampMode, ElemType, Inst, Program, VOp};
use crate::reg::{ScalarReg, VectorReg};
use std::collections::HashMap;

/// Incremental program builder with label fix-ups.
///
/// # Example
/// ```
/// use camp_isa::asm::Assembler;
/// use camp_isa::reg::S;
///
/// let mut a = Assembler::new("count");
/// a.li(S(1), 4);
/// a.label("loop");
/// a.addi(S(1), S(1), -1);
/// a.bne(S(1), S(0), "loop");
/// let prog = a.finish();
/// assert_eq!(prog.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    name: String,
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<(usize, String)>,
}

impl Assembler {
    /// Start a new program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Assembler { name: name.into(), ..Assembler::default() }
    }

    /// Define a label at the current position.
    ///
    /// # Panics
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.insts.len() as u32);
        assert!(prev.is_none(), "label `{name}` defined twice");
    }

    /// Append a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolve all labels and produce the program.
    ///
    /// # Panics
    /// Panics if a branch references an undefined label.
    pub fn finish(mut self) -> Program {
        for (at, label) in &self.fixups {
            let target =
                *self.labels.get(label).unwrap_or_else(|| panic!("undefined label `{label}`"));
            if let Inst::Branch { target: t, .. } = &mut self.insts[*at] {
                *t = target;
            } else {
                unreachable!("fixup on non-branch");
            }
        }
        Program::new(self.name, self.insts)
    }

    // ---- scalar helpers ----

    /// `rd = imm`
    pub fn li(&mut self, rd: ScalarReg, imm: i64) {
        self.push(Inst::Li { rd, imm });
    }
    /// `rd = rs + imm`
    pub fn addi(&mut self, rd: ScalarReg, rs: ScalarReg, imm: i64) {
        self.push(Inst::Addi { rd, rs, imm });
    }
    /// `rd = rs` (move)
    pub fn mv(&mut self, rd: ScalarReg, rs: ScalarReg) {
        self.push(Inst::Addi { rd, rs, imm: 0 });
    }
    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: ScalarReg, rs1: ScalarReg, rs2: ScalarReg) {
        self.push(Inst::Add { rd, rs1, rs2 });
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: ScalarReg, rs1: ScalarReg, rs2: ScalarReg) {
        self.push(Inst::Sub { rd, rs1, rs2 });
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: ScalarReg, rs1: ScalarReg, rs2: ScalarReg) {
        self.push(Inst::Mul { rd, rs1, rs2 });
    }
    /// `rd = rs << sh`
    pub fn slli(&mut self, rd: ScalarReg, rs: ScalarReg, sh: u8) {
        self.push(Inst::Slli { rd, rs, sh });
    }
    /// `rd = rs >> sh`
    pub fn srli(&mut self, rd: ScalarReg, rs: ScalarReg, sh: u8) {
        self.push(Inst::Srli { rd, rs, sh });
    }
    /// `rd = rs & imm`
    pub fn andi(&mut self, rd: ScalarReg, rs: ScalarReg, imm: i64) {
        self.push(Inst::Andi { rd, rs, imm });
    }
    /// No-op.
    pub fn nop(&mut self) {
        self.push(Inst::Nop);
    }

    fn branch(&mut self, cond: BranchCond, rs1: ScalarReg, rs2: ScalarReg, label: &str) {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.push(Inst::Branch { cond, rs1, rs2, target: u32::MAX });
    }

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: ScalarReg, rs2: ScalarReg, label: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }
    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: ScalarReg, rs2: ScalarReg, label: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }
    /// Branch to `label` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: ScalarReg, rs2: ScalarReg, label: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }
    /// Branch to `label` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: ScalarReg, rs2: ScalarReg, label: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }

    /// Scalar load of `width` bytes (sign-extended).
    pub fn load_s(&mut self, rd: ScalarReg, base: ScalarReg, offset: i64, width: u8) {
        debug_assert!(matches!(width, 1 | 2 | 4 | 8));
        self.push(Inst::LoadS { rd, base, offset, width });
    }
    /// Scalar store of the low `width` bytes.
    pub fn store_s(&mut self, rs: ScalarReg, base: ScalarReg, offset: i64, width: u8) {
        debug_assert!(matches!(width, 1 | 2 | 4 | 8));
        self.push(Inst::StoreS { rs, base, offset, width });
    }
    /// Scalar byte load (`lb`).
    pub fn lb(&mut self, rd: ScalarReg, base: ScalarReg, offset: i64) {
        self.load_s(rd, base, offset, 1);
    }
    /// Scalar word load (`lw`).
    pub fn lw(&mut self, rd: ScalarReg, base: ScalarReg, offset: i64) {
        self.load_s(rd, base, offset, 4);
    }

    // ---- vector helpers ----

    /// 64-byte vector load.
    pub fn vload(&mut self, vd: VectorReg, base: ScalarReg, offset: i64) {
        self.push(Inst::VLoad { vd, base, offset });
    }
    /// 64-byte vector store.
    pub fn vstore(&mut self, vs: VectorReg, base: ScalarReg, offset: i64) {
        self.push(Inst::VStore { vs, base, offset });
    }
    /// Broadcast scalar to all lanes of type `ty`.
    pub fn vdup(&mut self, ty: ElemType, vd: VectorReg, rs: ScalarReg) {
        self.push(Inst::VDup { ty, vd, rs });
    }
    /// Load one element and replicate it to all lanes (`ld1rw`-style).
    pub fn vload_rep(&mut self, ty: ElemType, vd: VectorReg, base: ScalarReg, offset: i64) {
        self.push(Inst::VLoadRep { ty, vd, base, offset });
    }
    /// Zero `vd`.
    pub fn vzero(&mut self, vd: VectorReg) {
        self.push(Inst::VZero { vd });
    }
    /// Generic element-wise op.
    pub fn vbin(&mut self, op: VOp, ty: ElemType, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.push(Inst::VBin { op, ty, vd, vs1, vs2 });
    }
    /// `vd = vs1 + vs2` over i32 lanes.
    pub fn vadd_i32(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.vbin(VOp::Add, ElemType::I32, vd, vs1, vs2);
    }
    /// `vd += vs1 * vs2` over i32 lanes.
    pub fn vmla_i32(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.vbin(VOp::Mla, ElemType::I32, vd, vs1, vs2);
    }
    /// `vd += vs1 * vs2` over i8 lanes (truncating — the overflow-unsafe
    /// `handv-int8` baseline of §5.3).
    pub fn vmla_i8(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.vbin(VOp::Mla, ElemType::I8, vd, vs1, vs2);
    }
    /// `vd += vs1 * vs2` over f32 lanes (FMLA).
    pub fn vfma_f32(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.vbin(VOp::Mla, ElemType::F32, vd, vs1, vs2);
    }
    /// Widening i8→i16 multiply of half `hi`.
    pub fn vmull(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg, hi: bool) {
        self.push(Inst::VMull { vd, vs1, vs2, hi });
    }
    /// Pairwise i16→i32 accumulate.
    pub fn vadalp(&mut self, vd: VectorReg, vs: VectorReg) {
        self.push(Inst::VAdalp { vd, vs });
    }
    /// Sign-extend quarter `part` of i8 lanes into i32 lanes.
    pub fn vsxtl(&mut self, vd: VectorReg, vs: VectorReg, part: u8) {
        debug_assert!(part < 4);
        self.push(Inst::VSxtl { vd, vs, part });
    }
    /// Interleave `granule`-byte chunks (16 = quadword zip).
    pub fn vzip(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg, granule: u8, hi: bool) {
        debug_assert!(matches!(granule, 1 | 2 | 4 | 8 | 16));
        self.push(Inst::VZip { vd, vs1, vs2, granule, hi });
    }
    /// Pairwise-pack adjacent i8 pairs into nibble bytes.
    pub fn vpack4(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.push(Inst::VPack4 { vd, vs1, vs2 });
    }
    /// Pairwise-unpack nibbles (low or high 32 bytes) to 64 i8 lanes.
    pub fn vunpack4(&mut self, vd: VectorReg, vs: VectorReg, hi: bool) {
        self.push(Inst::VUnpack4 { vd, vs, hi });
    }
    /// Arm-style `smmla`.
    pub fn smmla(&mut self, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.push(Inst::Smmla { vd, vs1, vs2 });
    }
    /// The `camp` instruction.
    pub fn camp(&mut self, mode: CampMode, vd: VectorReg, vs1: VectorReg, vs2: VectorReg) {
        self.push(Inst::Camp { mode, vd, vs1, vs2 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::{S, V};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new("t");
        a.beq(S(1), S(2), "end"); // forward
        a.label("top");
        a.addi(S(1), S(1), 1);
        a.bne(S(1), S(2), "top"); // backward
        a.label("end");
        a.nop();
        let p = a.finish();
        match p.insts()[0] {
            Inst::Branch { target, .. } => assert_eq!(target, 3),
            _ => panic!("expected branch"),
        }
        match p.insts()[2] {
            Inst::Branch { target, .. } => assert_eq!(target, 1),
            _ => panic!("expected branch"),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Assembler::new("t");
        a.beq(S(1), S(2), "nowhere");
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new("t");
        a.label("l");
        a.label("l");
    }

    #[test]
    fn mv_is_addi_zero() {
        let mut a = Assembler::new("t");
        a.mv(S(2), S(3));
        let p = a.finish();
        assert_eq!(p.insts()[0], Inst::Addi { rd: S(2), rs: S(3), imm: 0 });
    }

    #[test]
    fn helper_coverage() {
        let mut a = Assembler::new("t");
        a.li(S(1), 1);
        a.add(S(1), S(1), S(1));
        a.sub(S(1), S(1), S(1));
        a.mul(S(1), S(1), S(1));
        a.slli(S(1), S(1), 2);
        a.srli(S(1), S(1), 2);
        a.andi(S(1), S(1), 0xff);
        a.lb(S(2), S(1), 0);
        a.lw(S(2), S(1), 0);
        a.store_s(S(2), S(1), 0, 8);
        a.vload(V(0), S(1), 0);
        a.vstore(V(0), S(1), 0);
        a.vdup(ElemType::I32, V(1), S(2));
        a.vzero(V(2));
        a.vadd_i32(V(3), V(0), V(1));
        a.vmla_i32(V(3), V(0), V(1));
        a.vmla_i8(V(3), V(0), V(1));
        a.vfma_f32(V(3), V(0), V(1));
        a.vmull(V(4), V(0), V(1), false);
        a.vadalp(V(5), V(4));
        a.vsxtl(V(6), V(0), 2);
        a.vzip(V(7), V(0), V(1), 1, false);
        a.vpack4(V(8), V(0), V(1));
        a.vunpack4(V(9), V(8), true);
        a.smmla(V(10), V(0), V(1));
        a.camp(CampMode::I8, V(11), V(0), V(1));
        assert_eq!(a.len(), 26);
        assert!(!a.is_empty());
        let p = a.finish();
        assert_eq!(p.len(), 26);
    }
}
