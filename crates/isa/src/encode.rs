//! Binary instruction encoding.
//!
//! The paper extends the ARM SVE and RISC-V ISAs with a `camp` opcode; to
//! mirror that "ISA extension" aspect, every VVA instruction has a stable
//! 64-bit machine encoding (8-bit major opcode plus bit-packed fields).
//! Encoding is lossless for all programs whose immediates fit the field
//! widths below; `encode` reports immediates that do not fit.
//!
//! Field widths: register indices 5 bits, shift amounts 6 bits, memory
//! offsets and ALU immediates 24 bits (signed), `li` immediates and branch
//! targets 32 bits.

use crate::inst::{BranchCond, CampMode, ElemType, Inst, VOp};
use crate::reg::{ScalarReg, VectorReg};
use std::fmt;

/// Error produced when an instruction cannot be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate exceeds its encoding field.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
        /// Field width in bits.
        bits: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a word cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown major opcode.
    BadOpcode(u8),
    /// A field held an invalid value (e.g. element-type code 3 on an
    /// instruction without an f32 form).
    BadField,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadField => f.write_str("invalid field value"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const LI: u8 = 0x01;
    pub const ADDI: u8 = 0x02;
    pub const ADD: u8 = 0x03;
    pub const SUB: u8 = 0x04;
    pub const MUL: u8 = 0x05;
    pub const SLLI: u8 = 0x06;
    pub const SRLI: u8 = 0x07;
    pub const ANDI: u8 = 0x08;
    pub const BRANCH: u8 = 0x09;
    pub const LOADS: u8 = 0x0a;
    pub const STORES: u8 = 0x0b;
    pub const NOP: u8 = 0x0c;
    pub const VLOAD: u8 = 0x10;
    pub const VSTORE: u8 = 0x11;
    pub const VBIN: u8 = 0x12;
    pub const VDUP: u8 = 0x13;
    pub const VZERO: u8 = 0x14;
    pub const VMULL: u8 = 0x15;
    pub const VADALP: u8 = 0x16;
    pub const VSXTL: u8 = 0x17;
    pub const VZIP: u8 = 0x18;
    pub const VPACK4: u8 = 0x19;
    pub const VUNPACK4: u8 = 0x1a;
    pub const SMMLA: u8 = 0x1b;
    pub const CAMP: u8 = 0x1c;
    pub const VLOADREP: u8 = 0x1d;
}

fn imm_field(value: i64, bits: u32) -> Result<u64, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange { value, bits });
    }
    Ok((value as u64) & ((1u64 << bits) - 1))
}

fn sext_field(raw: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((raw << shift) as i64) >> shift
}

fn ty_code(ty: ElemType) -> u64 {
    match ty {
        ElemType::I8 => 0,
        ElemType::I16 => 1,
        ElemType::I32 => 2,
        ElemType::F32 => 3,
    }
}

fn ty_from(code: u64) -> ElemType {
    match code & 3 {
        0 => ElemType::I8,
        1 => ElemType::I16,
        2 => ElemType::I32,
        _ => ElemType::F32,
    }
}

fn vop_code(op: VOp) -> u64 {
    match op {
        VOp::Add => 0,
        VOp::Sub => 1,
        VOp::Mul => 2,
        VOp::Mla => 3,
    }
}

fn vop_from(code: u64) -> VOp {
    match code & 3 {
        0 => VOp::Add,
        1 => VOp::Sub,
        2 => VOp::Mul,
        _ => VOp::Mla,
    }
}

fn cond_code(c: BranchCond) -> u64 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
    }
}

fn cond_from(code: u64) -> BranchCond {
    match code & 3 {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        _ => BranchCond::Ge,
    }
}

#[allow(clippy::identity_op)]
fn pack(opcode: u8, fields: &[(u64, u32)]) -> u64 {
    let mut word = opcode as u64;
    let mut shift = 8u32;
    for &(value, bits) in fields {
        debug_assert!(bits == 64 || value < (1u64 << bits));
        word |= value << shift;
        shift += bits;
    }
    debug_assert!(shift <= 64);
    word
}

struct Fields(u64, u32);

impl Fields {
    fn new(word: u64) -> Self {
        Fields(word, 8)
    }
    fn take(&mut self, bits: u32) -> u64 {
        let v = (self.0 >> self.1) & if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        self.1 += bits;
        v
    }
    fn sreg(&mut self) -> ScalarReg {
        ScalarReg(self.take(5) as u8)
    }
    fn vreg(&mut self) -> VectorReg {
        VectorReg(self.take(5) as u8)
    }
}

/// Encode one instruction to its 64-bit machine word.
///
/// # Errors
/// [`EncodeError::ImmOutOfRange`] if an immediate exceeds its field.
pub fn encode(inst: &Inst) -> Result<u64, EncodeError> {
    let w = match *inst {
        Inst::Li { rd, imm } => pack(op::LI, &[(rd.0 as u64, 5), (imm_field(imm, 32)?, 32)]),
        Inst::Addi { rd, rs, imm } => {
            pack(op::ADDI, &[(rd.0 as u64, 5), (rs.0 as u64, 5), (imm_field(imm, 24)?, 24)])
        }
        Inst::Add { rd, rs1, rs2 } => {
            pack(op::ADD, &[(rd.0 as u64, 5), (rs1.0 as u64, 5), (rs2.0 as u64, 5)])
        }
        Inst::Sub { rd, rs1, rs2 } => {
            pack(op::SUB, &[(rd.0 as u64, 5), (rs1.0 as u64, 5), (rs2.0 as u64, 5)])
        }
        Inst::Mul { rd, rs1, rs2 } => {
            pack(op::MUL, &[(rd.0 as u64, 5), (rs1.0 as u64, 5), (rs2.0 as u64, 5)])
        }
        Inst::Slli { rd, rs, sh } => {
            pack(op::SLLI, &[(rd.0 as u64, 5), (rs.0 as u64, 5), (sh as u64, 6)])
        }
        Inst::Srli { rd, rs, sh } => {
            pack(op::SRLI, &[(rd.0 as u64, 5), (rs.0 as u64, 5), (sh as u64, 6)])
        }
        Inst::Andi { rd, rs, imm } => {
            pack(op::ANDI, &[(rd.0 as u64, 5), (rs.0 as u64, 5), (imm_field(imm, 24)?, 24)])
        }
        Inst::Branch { cond, rs1, rs2, target } => pack(
            op::BRANCH,
            &[(cond_code(cond), 2), (rs1.0 as u64, 5), (rs2.0 as u64, 5), (target as u64, 32)],
        ),
        Inst::LoadS { rd, base, offset, width } => pack(
            op::LOADS,
            &[
                (rd.0 as u64, 5),
                (base.0 as u64, 5),
                (width as u64, 4),
                (imm_field(offset, 24)?, 24),
            ],
        ),
        Inst::StoreS { rs, base, offset, width } => pack(
            op::STORES,
            &[
                (rs.0 as u64, 5),
                (base.0 as u64, 5),
                (width as u64, 4),
                (imm_field(offset, 24)?, 24),
            ],
        ),
        Inst::Nop => pack(op::NOP, &[]),
        Inst::VLoad { vd, base, offset } => {
            pack(op::VLOAD, &[(vd.0 as u64, 5), (base.0 as u64, 5), (imm_field(offset, 24)?, 24)])
        }
        Inst::VStore { vs, base, offset } => {
            pack(op::VSTORE, &[(vs.0 as u64, 5), (base.0 as u64, 5), (imm_field(offset, 24)?, 24)])
        }
        Inst::VBin { op: o, ty, vd, vs1, vs2 } => pack(
            op::VBIN,
            &[
                (vop_code(o), 2),
                (ty_code(ty), 2),
                (vd.0 as u64, 5),
                (vs1.0 as u64, 5),
                (vs2.0 as u64, 5),
            ],
        ),
        Inst::VDup { ty, vd, rs } => {
            pack(op::VDUP, &[(ty_code(ty), 2), (vd.0 as u64, 5), (rs.0 as u64, 5)])
        }
        Inst::VZero { vd } => pack(op::VZERO, &[(vd.0 as u64, 5)]),
        Inst::VMull { vd, vs1, vs2, hi } => pack(
            op::VMULL,
            &[(vd.0 as u64, 5), (vs1.0 as u64, 5), (vs2.0 as u64, 5), (hi as u64, 1)],
        ),
        Inst::VAdalp { vd, vs } => pack(op::VADALP, &[(vd.0 as u64, 5), (vs.0 as u64, 5)]),
        Inst::VSxtl { vd, vs, part } => {
            pack(op::VSXTL, &[(vd.0 as u64, 5), (vs.0 as u64, 5), (part as u64, 2)])
        }
        Inst::VZip { vd, vs1, vs2, granule, hi } => pack(
            op::VZIP,
            &[
                (vd.0 as u64, 5),
                (vs1.0 as u64, 5),
                (vs2.0 as u64, 5),
                (granule as u64, 5),
                (hi as u64, 1),
            ],
        ),
        Inst::VLoadRep { ty, vd, base, offset } => pack(
            op::VLOADREP,
            &[(ty_code(ty), 2), (vd.0 as u64, 5), (base.0 as u64, 5), (imm_field(offset, 24)?, 24)],
        ),
        Inst::VPack4 { vd, vs1, vs2 } => {
            pack(op::VPACK4, &[(vd.0 as u64, 5), (vs1.0 as u64, 5), (vs2.0 as u64, 5)])
        }
        Inst::VUnpack4 { vd, vs, hi } => {
            pack(op::VUNPACK4, &[(vd.0 as u64, 5), (vs.0 as u64, 5), (hi as u64, 1)])
        }
        Inst::Smmla { vd, vs1, vs2 } => {
            pack(op::SMMLA, &[(vd.0 as u64, 5), (vs1.0 as u64, 5), (vs2.0 as u64, 5)])
        }
        Inst::Camp { mode, vd, vs1, vs2 } => pack(
            op::CAMP,
            &[
                (matches!(mode, CampMode::I4) as u64, 1),
                (vd.0 as u64, 5),
                (vs1.0 as u64, 5),
                (vs2.0 as u64, 5),
            ],
        ),
    };
    Ok(w)
}

/// Decode a 64-bit machine word back to an instruction.
///
/// # Errors
/// [`DecodeError::BadOpcode`] for unknown opcodes.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let opcode = (word & 0xff) as u8;
    let mut f = Fields::new(word);
    let inst = match opcode {
        op::LI => {
            let rd = f.sreg();
            let imm = sext_field(f.take(32), 32);
            Inst::Li { rd, imm }
        }
        op::ADDI => {
            let rd = f.sreg();
            let rs = f.sreg();
            let imm = sext_field(f.take(24), 24);
            Inst::Addi { rd, rs, imm }
        }
        op::ADD => Inst::Add { rd: f.sreg(), rs1: f.sreg(), rs2: f.sreg() },
        op::SUB => Inst::Sub { rd: f.sreg(), rs1: f.sreg(), rs2: f.sreg() },
        op::MUL => Inst::Mul { rd: f.sreg(), rs1: f.sreg(), rs2: f.sreg() },
        op::SLLI => Inst::Slli { rd: f.sreg(), rs: f.sreg(), sh: f.take(6) as u8 },
        op::SRLI => Inst::Srli { rd: f.sreg(), rs: f.sreg(), sh: f.take(6) as u8 },
        op::ANDI => {
            let rd = f.sreg();
            let rs = f.sreg();
            let imm = sext_field(f.take(24), 24);
            Inst::Andi { rd, rs, imm }
        }
        op::BRANCH => {
            let cond = cond_from(f.take(2));
            let rs1 = f.sreg();
            let rs2 = f.sreg();
            let target = f.take(32) as u32;
            Inst::Branch { cond, rs1, rs2, target }
        }
        op::LOADS => {
            let rd = f.sreg();
            let base = f.sreg();
            let width = f.take(4) as u8;
            let offset = sext_field(f.take(24), 24);
            if !matches!(width, 1 | 2 | 4 | 8) {
                return Err(DecodeError::BadField);
            }
            Inst::LoadS { rd, base, offset, width }
        }
        op::STORES => {
            let rs = f.sreg();
            let base = f.sreg();
            let width = f.take(4) as u8;
            let offset = sext_field(f.take(24), 24);
            if !matches!(width, 1 | 2 | 4 | 8) {
                return Err(DecodeError::BadField);
            }
            Inst::StoreS { rs, base, offset, width }
        }
        op::NOP => Inst::Nop,
        op::VLOAD => {
            let vd = f.vreg();
            let base = f.sreg();
            let offset = sext_field(f.take(24), 24);
            Inst::VLoad { vd, base, offset }
        }
        op::VSTORE => {
            let vs = f.vreg();
            let base = f.sreg();
            let offset = sext_field(f.take(24), 24);
            Inst::VStore { vs, base, offset }
        }
        op::VBIN => {
            let o = vop_from(f.take(2));
            let ty = ty_from(f.take(2));
            Inst::VBin { op: o, ty, vd: f.vreg(), vs1: f.vreg(), vs2: f.vreg() }
        }
        op::VDUP => {
            let ty = ty_from(f.take(2));
            Inst::VDup { ty, vd: f.vreg(), rs: f.sreg() }
        }
        op::VZERO => Inst::VZero { vd: f.vreg() },
        op::VMULL => {
            let vd = f.vreg();
            let vs1 = f.vreg();
            let vs2 = f.vreg();
            let hi = f.take(1) != 0;
            Inst::VMull { vd, vs1, vs2, hi }
        }
        op::VADALP => Inst::VAdalp { vd: f.vreg(), vs: f.vreg() },
        op::VSXTL => {
            let vd = f.vreg();
            let vs = f.vreg();
            let part = f.take(2) as u8;
            Inst::VSxtl { vd, vs, part }
        }
        op::VZIP => {
            let vd = f.vreg();
            let vs1 = f.vreg();
            let vs2 = f.vreg();
            let granule = f.take(5) as u8;
            let hi = f.take(1) != 0;
            if !matches!(granule, 1 | 2 | 4 | 8 | 16) {
                return Err(DecodeError::BadField);
            }
            Inst::VZip { vd, vs1, vs2, granule, hi }
        }
        op::VLOADREP => {
            let ty = ty_from(f.take(2));
            let vd = f.vreg();
            let base = f.sreg();
            let offset = sext_field(f.take(24), 24);
            Inst::VLoadRep { ty, vd, base, offset }
        }
        op::VPACK4 => Inst::VPack4 { vd: f.vreg(), vs1: f.vreg(), vs2: f.vreg() },
        op::VUNPACK4 => {
            let vd = f.vreg();
            let vs = f.vreg();
            let hi = f.take(1) != 0;
            Inst::VUnpack4 { vd, vs, hi }
        }
        op::SMMLA => Inst::Smmla { vd: f.vreg(), vs1: f.vreg(), vs2: f.vreg() },
        op::CAMP => {
            let mode = if f.take(1) != 0 { CampMode::I4 } else { CampMode::I8 };
            Inst::Camp { mode, vd: f.vreg(), vs1: f.vreg(), vs2: f.vreg() }
        }
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{S, V};

    fn roundtrip(i: Inst) {
        let w = encode(&i).expect("encodes");
        let back = decode(w).expect("decodes");
        assert_eq!(i, back, "word {w:#018x}");
    }

    #[test]
    fn roundtrip_all_forms() {
        let cases = vec![
            Inst::Li { rd: S(5), imm: -123456 },
            Inst::Addi { rd: S(1), rs: S(2), imm: -8_000_000 },
            Inst::Add { rd: S(3), rs1: S(4), rs2: S(5) },
            Inst::Sub { rd: S(3), rs1: S(4), rs2: S(5) },
            Inst::Mul { rd: S(3), rs1: S(4), rs2: S(5) },
            Inst::Slli { rd: S(1), rs: S(2), sh: 63 },
            Inst::Srli { rd: S(1), rs: S(2), sh: 1 },
            Inst::Andi { rd: S(1), rs: S(2), imm: 0xff },
            Inst::Branch { cond: BranchCond::Lt, rs1: S(9), rs2: S(10), target: 77 },
            Inst::LoadS { rd: S(8), base: S(9), offset: -64, width: 4 },
            Inst::StoreS { rs: S(8), base: S(9), offset: 128, width: 8 },
            Inst::Nop,
            Inst::VLoad { vd: V(31), base: S(31), offset: 4096 },
            Inst::VStore { vs: V(0), base: S(1), offset: -4096 },
            Inst::VBin { op: VOp::Mla, ty: ElemType::F32, vd: V(1), vs1: V(2), vs2: V(3) },
            Inst::VDup { ty: ElemType::I8, vd: V(4), rs: S(5) },
            Inst::VZero { vd: V(6) },
            Inst::VMull { vd: V(7), vs1: V(8), vs2: V(9), hi: true },
            Inst::VAdalp { vd: V(10), vs: V(11) },
            Inst::VSxtl { vd: V(12), vs: V(13), part: 3 },
            Inst::VZip { vd: V(14), vs1: V(15), vs2: V(16), granule: 8, hi: false },
            Inst::VZip { vd: V(14), vs1: V(15), vs2: V(16), granule: 16, hi: true },
            Inst::VLoadRep { ty: ElemType::F32, vd: V(9), base: S(3), offset: -256 },
            Inst::VPack4 { vd: V(17), vs1: V(18), vs2: V(19) },
            Inst::VUnpack4 { vd: V(20), vs: V(21), hi: true },
            Inst::Smmla { vd: V(22), vs1: V(23), vs2: V(24) },
            Inst::Camp { mode: CampMode::I4, vd: V(25), vs1: V(26), vs2: V(27) },
            Inst::Camp { mode: CampMode::I8, vd: V(28), vs1: V(29), vs2: V(30) },
        ];
        for c in cases {
            roundtrip(c);
        }
    }

    #[test]
    fn immediate_overflow_is_reported() {
        let e = encode(&Inst::Addi { rd: S(1), rs: S(2), imm: 1 << 30 }).unwrap_err();
        assert_eq!(e, EncodeError::ImmOutOfRange { value: 1 << 30, bits: 24 });
    }

    #[test]
    fn bad_opcode_is_reported() {
        assert_eq!(decode(0xff), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_width_field_is_reported() {
        // LOADS with width = 3 (invalid)
        let w = encode(&Inst::LoadS { rd: S(1), base: S(2), offset: 0, width: 4 }).unwrap();
        // width field starts at bit 8+5+5=18
        let bad = (w & !(0xf << 18)) | (3 << 18);
        assert_eq!(decode(bad), Err(DecodeError::BadField));
    }

    #[test]
    fn opcode_is_low_byte() {
        let w = encode(&Inst::Nop).unwrap();
        assert_eq!(w & 0xff, 0x0c);
    }
}
