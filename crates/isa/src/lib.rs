//! # camp-isa — a virtual vector ISA for architecture simulation
//!
//! This crate defines the "VVA" (Virtual Vector Architecture) instruction
//! set used throughout the CAMP reproduction. It plays the role that the
//! ARM SVE ISA (plus the paper's custom `camp` instruction) and the RISC-V
//! vector subset play in the original work: a compact assembly-level
//! language in which every evaluated GeMM kernel is written, executed
//! functionally by [`machine::Machine`], and timed by the models in
//! `camp-pipeline`.
//!
//! The ISA is deliberately small but complete enough to express all the
//! kernels evaluated in the paper:
//!
//! * scalar ALU, scalar memory and branch instructions (loop control,
//!   address arithmetic),
//! * unit-stride 512-bit vector loads/stores,
//! * element-wise vector arithmetic at i8/i16/i32/f32 granularity,
//!   including multiply-accumulate,
//! * widening multiplies and extensions (`vmull`, `vsxtl`) used by the
//!   gemmlowp-style baseline,
//! * Arm-style `smmla` (2×8 × 8×2 int8 matrix multiply-accumulate per
//!   128-bit segment),
//! * the paper's `camp` instruction in 8-bit and 4-bit modes, and
//! * nibble pack/unpack helpers for sub-byte data movement studies.
//!
//! # Example
//!
//! ```
//! use camp_isa::asm::Assembler;
//! use camp_isa::machine::Machine;
//! use camp_isa::reg::{S, V};
//!
//! let mut a = Assembler::new("double-words");
//! a.li(S(1), 0);          // base address
//! a.vload(V(0), S(1), 0); // v0 <- mem[0..64]
//! a.vadd_i32(V(1), V(0), V(0));
//! a.vstore(V(1), S(1), 64);
//! let prog = a.finish();
//!
//! let mut m = Machine::new(1 << 12);
//! m.write_i32(0, 21);
//! m.run(&prog, 1_000).unwrap();
//! assert_eq!(m.read_i32(64), 42);
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod machine;
pub mod reg;

pub use asm::Assembler;
pub use disasm::{disassemble, disassemble_program};
pub use inst::{CampMode, ElemType, Inst, InstClass, Program, VOp};
pub use machine::{ExecError, Machine, MemAccess, StepOut};
pub use reg::{ScalarReg, VectorReg, S, V};

/// Vector length in bits. The paper evaluates SVE at VL = 512 and a CAMP
/// block whose natural operand size is one 512-bit register, so the whole
/// reproduction fixes VL = 512.
pub const VLEN_BITS: usize = 512;
/// Vector length in bytes (64).
pub const VLEN_BYTES: usize = VLEN_BITS / 8;
/// Number of 64-bit lanes in the CAMP datapath (8 lanes of 64 bits).
pub const LANES: usize = VLEN_BITS / 64;
