//! Gate-count area model for the CAMP block.

use camp_core::CampStructure;

/// Technology node parameters.
///
/// `nand2_um2` is the NAND2-equivalent cell footprint including routing
/// overhead at ~85 % utilization (the paper's floorplan density, §6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Display name.
    pub name: &'static str,
    /// µm² per NAND2-equivalent gate (placed + routed).
    pub nand2_um2: f64,
    /// Reference core/SoC area in mm² for overhead reporting.
    pub reference_mm2: f64,
    /// Name of the reference design.
    pub reference_name: &'static str,
}

impl TechNode {
    /// TSMC 7 nm as used for the A64FX comparison. The A64FX core area
    /// is derived from the paper: CAMP = 0.0273 mm² at 1 % overhead.
    pub fn tsmc7() -> Self {
        TechNode {
            name: "TSMC 7nm",
            nand2_um2: 0.060,
            reference_mm2: 2.73,
            reference_name: "A64FX core",
        }
    }

    /// GlobalFoundries 22FDX as used for the Sargantana SoC comparison:
    /// CAMP = 0.0782 mm² at 4 % of the SoC.
    pub fn gf22() -> Self {
        TechNode {
            name: "GF 22FDX",
            nand2_um2: 0.170,
            reference_mm2: 1.955,
            reference_name: "Sargantana SoC",
        }
    }
}

/// Gate-inventory area model.
#[derive(Debug, Clone, Copy)]
pub struct AreaModel {
    structure: CampStructure,
}

/// Result of an area evaluation.
#[derive(Debug, Clone, Copy)]
pub struct AreaReport {
    /// Total NAND2-equivalent gates.
    pub gates: f64,
    /// Block area in mm².
    pub mm2: f64,
    /// Area overhead relative to the node's reference design, in %.
    pub overhead_pct: f64,
}

/// NAND2-equivalents per 4-bit multiplier block: 16 partial-product
/// terms with sign control, carry-save reduction rows and the mode
/// muxing that lets four blocks combine into an 8-bit multiplier.
const GATES_PER_BLOCK4: f64 = 160.0;
/// NAND2-equivalents per recombination/intra-lane adder bit.
const GATES_PER_ADDER_BIT: f64 = 10.0;
/// NAND2-equivalents per register/accumulator bit (scan flop ≈ 8 gates).
const GATES_PER_FLOP_BIT: f64 = 8.0;
/// Operand routing overhead as a fraction of datapath gates.
const ROUTING_FRACTION: f64 = 0.32;

impl AreaModel {
    /// Model for the paper's CAMP structure.
    pub fn paper() -> Self {
        AreaModel { structure: CampStructure::paper() }
    }

    /// Model for an arbitrary structure (ablations).
    pub fn with_structure(structure: CampStructure) -> Self {
        AreaModel { structure }
    }

    /// The structure being modeled.
    pub fn structure(&self) -> &CampStructure {
        &self.structure
    }

    /// Total NAND2-equivalent gate count of the CAMP block.
    pub fn gates(&self) -> f64 {
        let s = &self.structure;
        let mult_gates = s.total_blocks() as f64 * GATES_PER_BLOCK4;
        // recombination adders inside each 8-bit multiplier: 3 adders of
        // ~12 bits per multiplier
        let recombine_bits = s.total_mult8() as f64 * 3.0 * 12.0;
        // intra-lane adders: 16 per lane × ~20-bit operands
        let intra_bits = (s.lanes * s.intra_lane_adders) as f64 * 20.0;
        // inter-lane accumulators: 16 × 32-bit adds over an 8:1 tree
        let inter_bits = s.inter_lane_accumulators as f64 * 32.0 * (s.lanes as f64 - 1.0);
        let adder_gates = (recombine_bits + intra_bits + inter_bits) * GATES_PER_ADDER_BIT;
        // auxiliary register + per-lane pipeline registers
        let flop_bits = s.aux_register_bits as f64 + (s.lanes * 16 * 24) as f64;
        let flop_gates = flop_bits * GATES_PER_FLOP_BIT;
        (mult_gates + adder_gates + flop_gates) * (1.0 + ROUTING_FRACTION)
    }

    /// Evaluate the model at a node.
    pub fn report(&self, node: TechNode) -> AreaReport {
        let gates = self.gates();
        let mm2 = gates * node.nand2_um2 / 1.0e6;
        AreaReport { gates, mm2, overhead_pct: 100.0 * mm2 / node.reference_mm2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_area_at_7nm_is_about_0_027_mm2() {
        let r = AreaModel::paper().report(TechNode::tsmc7());
        // paper: 0.027263 mm², 1 % of the A64FX core
        assert!((r.mm2 - 0.0273).abs() / 0.0273 < 0.25, "7nm area {} mm²", r.mm2);
        assert!(r.overhead_pct < 1.5, "overhead {}%", r.overhead_pct);
    }

    #[test]
    fn paper_area_at_22nm_is_about_0_078_mm2() {
        let r = AreaModel::paper().report(TechNode::gf22());
        // paper: 0.0782 mm², 4 % of the SoC
        assert!((r.mm2 - 0.0782).abs() / 0.0782 < 0.25, "22nm area {} mm²", r.mm2);
        assert!(r.overhead_pct > 2.0 && r.overhead_pct < 6.0, "overhead {}%", r.overhead_pct);
    }

    #[test]
    fn area_scales_with_lane_count() {
        let mut small = CampStructure::paper();
        small.lanes = 4;
        small.intra_lane_adders = 16;
        let a_small = AreaModel::with_structure(small).gates();
        let a_full = AreaModel::paper().gates();
        assert!(a_full > 1.5 * a_small);
    }

    #[test]
    fn gates_are_dominated_by_multipliers() {
        let m = AreaModel::paper();
        let mult_only = m.structure().total_blocks() as f64 * GATES_PER_BLOCK4;
        assert!(mult_only / m.gates() > 0.35);
    }
}
