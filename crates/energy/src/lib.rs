//! # camp-energy — analytic area/power/energy models
//!
//! Substitutes the paper's Synopsys synthesis + PnR flow (§6.1) with an
//! analytic gate-level model:
//!
//! * [`area`] — the CAMP block's gate inventory is derived from its
//!   structure (`camp-core::CampStructure`: 1024 4-bit multiplier
//!   blocks, recombination adders, 16+16 accumulators, the auxiliary
//!   register and operand routing), multiplied by per-node
//!   NAND2-equivalent area. Node constants are calibrated so the block
//!   lands at the paper's reported footprints — 0.0273 mm² @ TSMC 7 nm
//!   (1 % of an A64FX core) and 0.0782 mm² @ GF 22FDX (4 % of the
//!   Sargantana SoC) — and the *model* then reports how the area scales
//!   with design choices (lane count, block width), which is what the
//!   ablation harness exercises.
//! * [`power`] — activity-based energy: per-event energies (4-bit block
//!   multiply, adder op, register/cache/DRAM access) at each node ×
//!   activity counters from `camp-pipeline` statistics, plus leakage per
//!   cycle. Produces the GOPS/W and normalized-energy numbers of
//!   Table 4 / Fig. 16.

pub mod area;
pub mod power;

pub use area::{AreaModel, AreaReport, TechNode};
pub use power::{EnergyModel, EnergyReport};
