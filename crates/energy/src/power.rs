//! Activity-based power/energy model.
//!
//! Energy = Σ (event count × per-event energy) + leakage × cycles.
//! Event counts come from `camp-pipeline` statistics; per-event energies
//! are per-node constants in picojoules, in line with published
//! measurements for the respective nodes (e.g. ~0.2 pJ for an 8-bit MAC
//! at 22 nm, a few pJ per 64-byte L1 access, tens of pJ per DRAM line).

use crate::area::TechNode;
use camp_pipeline::SimStats;

/// Per-event energies (pJ) and leakage for a node + core combination.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Energy per 4-bit multiplier-block operation.
    pub block_mult_pj: f64,
    /// Energy per 32-bit accumulator/adder operation.
    pub add32_pj: f64,
    /// Energy per vector-register-file 512-bit read or write.
    pub vrf_access_pj: f64,
    /// Energy per scalar instruction (pipeline + RF).
    pub scalar_inst_pj: f64,
    /// Energy per vector ALU instruction excluding the multiplier array.
    pub vector_inst_pj: f64,
    /// Energy per L1 access (per 64 bytes).
    pub l1_access_pj: f64,
    /// Energy per L2 access (line).
    pub l2_access_pj: f64,
    /// Energy per main-memory access (line).
    pub dram_access_pj: f64,
    /// Static leakage per cycle for the whole core (pJ).
    pub leakage_pj_per_cycle: f64,
    /// Core clock in GHz (power accounting).
    pub freq_ghz: f64,
}

impl EnergyModel {
    /// A64FX-class core at TSMC 7 nm, 2 GHz.
    pub fn a64fx_7nm() -> Self {
        EnergyModel {
            block_mult_pj: 0.025,
            add32_pj: 0.020,
            vrf_access_pj: 1.3,
            scalar_inst_pj: 6.0,
            vector_inst_pj: 12.0,
            l1_access_pj: 6.0,
            l2_access_pj: 30.0,
            dram_access_pj: 300.0,
            leakage_pj_per_cycle: 18.0,
            freq_ghz: 2.0,
        }
    }

    /// Sargantana-class edge core at GF 22FDX, 1 GHz. Calibrated so a
    /// CAMP-dominated convolution lands near the paper's reported
    /// 270–405 GOPS/W (§6.2).
    pub fn edge_22nm() -> Self {
        EnergyModel {
            block_mult_pj: 0.09,
            add32_pj: 0.07,
            vrf_access_pj: 2.2,
            scalar_inst_pj: 8.0,
            vector_inst_pj: 18.0,
            l1_access_pj: 16.0,
            l2_access_pj: 50.0,
            dram_access_pj: 400.0,
            leakage_pj_per_cycle: 25.0,
            freq_ghz: 1.0,
        }
    }

    /// Node this model corresponds to (for reports).
    pub fn node(&self) -> TechNode {
        if (self.freq_ghz - 2.0).abs() < 0.5 {
            TechNode::tsmc7()
        } else {
            TechNode::gf22()
        }
    }

    /// Evaluate the energy of a simulated run.
    pub fn evaluate(&self, stats: &SimStats) -> EnergyReport {
        use camp_isa::inst::InstClass;

        // multiplier-array activity: camp issues × blocks used per issue
        let camp_blocks =
            stats.camp_issues_i8 as f64 * 1024.0 + stats.camp_issues_i4 as f64 * 512.0;
        // non-camp multiplies modeled at their own width: a vector MLA
        // switches the equivalent of its lane products
        let vmul_blocks = stats.count(InstClass::VMul) as f64 * 16.0 * 4.0;
        let mult_pj = (camp_blocks + vmul_blocks) * self.block_mult_pj;

        let camp_adds =
            (stats.camp_issues_i8 + stats.camp_issues_i4) as f64 * (16.0 * 8.0 + 16.0 * 8.0);
        let add_pj = camp_adds * self.add32_pj;

        let vec_insts = stats.vector_insts() as f64;
        let scalar_insts = (stats.insts - stats.vector_insts()) as f64;
        let pipe_pj = vec_insts * self.vector_inst_pj + scalar_insts * self.scalar_inst_pj;

        // each vector instruction reads ~2 and writes ~1 VRF ports
        let vrf_pj = vec_insts * 3.0 * self.vrf_access_pj;

        let mem_pj = stats.l1d.accesses as f64 * self.l1_access_pj
            + stats.l2.accesses as f64 * self.l2_access_pj
            + (stats.mem_reads + stats.mem_writes) as f64 * self.dram_access_pj;

        let leak_pj = stats.cycles as f64 * self.leakage_pj_per_cycle;

        let total_pj = mult_pj + add_pj + pipe_pj + vrf_pj + mem_pj + leak_pj;
        let seconds = stats.cycles as f64 / (self.freq_ghz * 1e9);
        let watts = if seconds > 0.0 { total_pj * 1e-12 / seconds } else { 0.0 };
        let gops = stats.gops(self.freq_ghz);
        EnergyReport {
            total_pj,
            watts,
            gops,
            gops_per_watt: if watts > 0.0 { gops / watts } else { 0.0 },
            camp_pj: mult_pj + add_pj,
        }
    }
}

/// Energy evaluation result.
#[derive(Debug, Clone, Copy)]
pub struct EnergyReport {
    /// Total energy in pJ.
    pub total_pj: f64,
    /// Average power in watts.
    pub watts: f64,
    /// Achieved GOPS.
    pub gops: f64,
    /// Energy efficiency.
    pub gops_per_watt: f64,
    /// Energy spent inside the CAMP datapath (pJ).
    pub camp_pj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats(cycles: u64, camp8: u64, insts: u64) -> SimStats {
        let mut s = SimStats { cycles, insts, ..SimStats::default() };
        s.camp_issues_i8 = camp8;
        s.macs = camp8 * 256;
        s
    }

    #[test]
    fn energy_is_positive_and_scales_with_work() {
        let m = EnergyModel::edge_22nm();
        let small = m.evaluate(&fake_stats(1000, 100, 2000));
        let large = m.evaluate(&fake_stats(2000, 200, 4000));
        assert!(small.total_pj > 0.0);
        assert!(large.total_pj > 1.9 * small.total_pj);
    }

    #[test]
    fn edge_camp_efficiency_order_of_magnitude() {
        // A camp-dominated loop at ~8 MACs/cycle should land in the
        // hundreds of GOPS/W at 22 nm, as the paper reports (270–405).
        let m = EnergyModel::edge_22nm();
        let mut s = fake_stats(32_000, 1000, 40_000);
        s.l1d.accesses = 3000;
        let r = m.evaluate(&s);
        assert!(r.gops_per_watt > 50.0 && r.gops_per_watt < 2000.0, "{}", r.gops_per_watt);
    }

    #[test]
    fn idle_cycles_cost_leakage_only() {
        let m = EnergyModel::a64fx_7nm();
        let r = m.evaluate(&fake_stats(1000, 0, 0));
        assert!((r.total_pj - 1000.0 * m.leakage_pj_per_cycle).abs() < 1e-6);
    }

    #[test]
    fn zero_cycles_reports_zero_power() {
        let m = EnergyModel::a64fx_7nm();
        let r = m.evaluate(&SimStats::default());
        assert_eq!(r.watts, 0.0);
        assert_eq!(r.gops_per_watt, 0.0);
    }

    #[test]
    fn node_lookup() {
        assert_eq!(EnergyModel::a64fx_7nm().node().name, "TSMC 7nm");
        assert_eq!(EnergyModel::edge_22nm().node().name, "GF 22FDX");
    }
}
