//! A single set-associative, write-back, write-allocate cache level.

use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Byte address of the first byte of the evicted line.
    pub line_addr: u64,
    /// True if the line was dirty (requires a writeback).
    pub dirty: bool,
}

/// Outcome of a line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOutcome {
    /// True on hit.
    pub hit: bool,
    /// True if the line was originally installed by the prefetcher.
    pub was_prefetched: bool,
    /// Line evicted to make room (miss only).
    pub evicted: Option<Evicted>,
}

/// One cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    set_mask: u64,
    // way-major arrays, indexed set * assoc + way
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    pref: Vec<bool>,
    stamp: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache from its configuration.
    ///
    /// # Panics
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let n = sets * cfg.assoc;
        Cache {
            cfg,
            sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            tags: vec![0; n],
            valid: vec![false; n],
            dirty: vec![false; n],
            pref: vec![false; n],
            stamp: vec![0; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// This level's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (contents are preserved — used to discard warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.cfg.line_bytes
    }

    /// Byte address of the line containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.sets.trailing_zeros())
    }

    /// Check residency without updating any state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.assoc;
        (0..self.cfg.assoc).any(|w| self.valid[base + w] && self.tags[base + w] == tag)
    }

    /// Perform a demand or prefetch access to the line containing `addr`.
    ///
    /// On a miss the line is installed (write-allocate), possibly evicting
    /// the LRU way, which is reported so the hierarchy can write it back.
    pub fn access(&mut self, addr: u64, is_store: bool, is_prefetch: bool) -> LineOutcome {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.assoc;

        // hit?
        for w in 0..self.cfg.assoc {
            let i = base + w;
            if self.valid[i] && self.tags[i] == tag {
                self.stamp[i] = self.tick;
                let was_prefetched = self.pref[i];
                if is_store {
                    self.dirty[i] = true;
                }
                if !is_prefetch {
                    self.stats.accesses += 1;
                    self.stats.hits += 1;
                    if was_prefetched {
                        self.stats.prefetch_hits += 1;
                        self.pref[i] = false; // count once
                    }
                }
                return LineOutcome { hit: true, was_prefetched, evicted: None };
            }
        }

        // miss: choose victim (invalid way first, then LRU)
        let mut victim = base;
        let mut best = u64::MAX;
        for w in 0..self.cfg.assoc {
            let i = base + w;
            if !self.valid[i] {
                victim = i;
                break;
            }
            if self.stamp[i] < best {
                best = self.stamp[i];
                victim = i;
            }
        }

        let evicted = if self.valid[victim] {
            let old_line =
                (self.tags[victim] << self.sets.trailing_zeros() | set as u64) << self.line_shift;
            self.stats.evictions += 1;
            if self.dirty[victim] {
                self.stats.writebacks += 1;
            }
            Some(Evicted { line_addr: old_line, dirty: self.dirty[victim] })
        } else {
            None
        };

        self.tags[victim] = tag;
        self.valid[victim] = true;
        self.dirty[victim] = is_store;
        self.pref[victim] = is_prefetch;
        self.stamp[victim] = self.tick;
        if !is_prefetch {
            self.stats.accesses += 1;
            self.stats.misses += 1;
        } else {
            self.stats.prefetches_issued += 1;
        }
        LineOutcome { hit: false, was_prefetched: false, evicted }
    }

    /// Install a writeback from an upper level: marks the line dirty,
    /// without touching demand statistics. Returns an eviction if one was
    /// needed to make room.
    pub fn write_back(&mut self, addr: u64) -> Option<Evicted> {
        // A writeback that hits just dirties the line.
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.assoc;
        for w in 0..self.cfg.assoc {
            let i = base + w;
            if self.valid[i] && self.tags[i] == tag {
                self.dirty[i] = true;
                self.stamp[i] = self.tick;
                return None;
            }
        }
        // Miss: allocate without stats (treated as a fill from above).
        let out = self.access(addr, true, true);
        // undo the prefetch-issued count: this was a writeback, not a prefetch
        self.stats.prefetches_issued -= 1;
        out.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 16-byte lines = 128 B
        Cache::new(CacheConfig {
            size_bytes: 128,
            assoc: 2,
            line_bytes: 16,
            hit_latency: 1,
            prefetch: false,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40, false, false).hit);
        assert!(c.access(0x4f, false, false).hit); // same line
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // set 0 lines: addresses with (addr/16) % 4 == 0 -> 0x000, 0x040, 0x080
        c.access(0x000, false, false);
        c.access(0x040, false, false);
        c.access(0x000, false, false); // touch 0x000 so 0x040 is LRU
        let out = c.access(0x080, false, false);
        assert_eq!(out.evicted, Some(Evicted { line_addr: 0x040, dirty: false }));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true, false); // store -> dirty
        c.access(0x040, false, false);
        let out = c.access(0x080, false, false);
        assert_eq!(out.evicted, Some(Evicted { line_addr: 0x000, dirty: true }));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetch_fills_do_not_count_as_demand() {
        let mut c = tiny();
        c.access(0x100, false, true); // prefetch
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.stats().prefetches_issued, 1);
        let out = c.access(0x100, false, false);
        assert!(out.hit);
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x200, false, false);
        c.access(0x200, true, false);
        c.access(0x240, false, false);
        let out = c.access(0x280, false, false);
        // evicted line 0x200 must be dirty from the store hit
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn write_back_dirties_resident_line() {
        let mut c = tiny();
        c.access(0x000, false, false);
        assert!(c.write_back(0x000).is_none());
        c.access(0x040, false, false);
        let out = c.access(0x080, false, false);
        assert!(out.evicted.unwrap().dirty);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = tiny();
        c.access(0x0, false, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x0, false, false).hit);
    }

    #[test]
    fn line_of_masks_offset() {
        let c = tiny();
        assert_eq!(c.line_of(0x47), 0x40);
        assert_eq!(c.line_bytes(), 16);
    }
}
