//! Two-level hierarchy with main memory and prefetching.

use crate::cache::Cache;
use crate::config::HierarchyConfig;
use crate::prefetch::{StridePrefetcher, MAX_DEGREE};

/// Result of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Load-to-use latency in cycles for this access.
    pub latency: u32,
    /// True if every line touched hit in L1.
    pub l1_hit: bool,
    /// True if the access was satisfied at or above L2.
    pub l2_hit: bool,
}

/// L1D + L2 + main memory, with stride prefetchers where configured.
///
/// Prefetches are modeled as *timely*: a prefetched line that has arrived
/// before its demand access produces an L1 hit. This idealization is noted
/// in DESIGN.md; it matches how the paper's gem5 configuration largely
/// hides streaming misses behind its stride prefetchers.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1d: Cache,
    l2: Cache,
    l1_prefetcher: StridePrefetcher,
    l2_prefetcher: StridePrefetcher,
    mem_reads: u64,
    mem_writes: u64,
}

impl Hierarchy {
    /// Build the hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Hierarchy {
            cfg,
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l1_prefetcher: StridePrefetcher::new(64, 2),
            l2_prefetcher: StridePrefetcher::new(64, 4),
            mem_reads: 0,
            mem_writes: 0,
        }
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Main-memory read transactions (L2 line fills).
    pub fn mem_reads(&self) -> u64 {
        self.mem_reads
    }

    /// Main-memory write transactions (L2 writebacks).
    pub fn mem_writes(&self) -> u64 {
        self.mem_writes
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Reset all statistics, keeping cache contents (warmup discard).
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.mem_reads = 0;
        self.mem_writes = 0;
    }

    /// Bring one line (identified by any byte address within it) into L1,
    /// going through L2 / memory as needed. Returns (l1_hit, l2_hit).
    fn access_line(&mut self, addr: u64, is_store: bool, is_prefetch: bool) -> (bool, bool) {
        let out1 = self.l1d.access(addr, is_store, is_prefetch);
        if let Some(ev) = out1.evicted {
            if ev.dirty {
                if let Some(ev2) = self.l2.write_back(ev.line_addr) {
                    if ev2.dirty {
                        self.mem_writes += 1;
                    }
                }
            }
        }
        if out1.hit {
            return (true, true);
        }
        // L1 miss -> L2 (demand, even if the L1 request was a prefetch:
        // the stats distinction only matters at the level that counts it)
        let out2 = self.l2.access(addr, false, is_prefetch);
        if let Some(ev) = out2.evicted {
            if ev.dirty {
                self.mem_writes += 1;
            }
        }
        if !out2.hit {
            self.mem_reads += 1;
        }
        (false, out2.hit)
    }

    /// Perform a demand access of `size` bytes at `addr` from the memory
    /// instruction at `pc`, training the prefetchers and returning the
    /// load-to-use latency.
    pub fn access(&mut self, addr: u64, size: u32, is_store: bool, pc: u64) -> AccessOutcome {
        let line = self.cfg.l1d.line_bytes as u64;
        let first = self.l1d.line_of(addr);
        let last = self.l1d.line_of(addr + (size.max(1) as u64 - 1));

        let mut all_l1 = true;
        let mut all_l2 = true;
        let mut a = first;
        loop {
            let (h1, h2) = self.access_line(a, is_store, false);
            all_l1 &= h1;
            all_l2 &= h2;
            if a == last {
                break;
            }
            a += line;
        }

        // Train L1 prefetcher on the demand stream.
        if self.cfg.l1d.prefetch {
            let mut out = [0u64; MAX_DEGREE];
            let n = self.l1_prefetcher.train(pc, addr, &mut out);
            for &pa in &out[..n] {
                if !self.l1d.probe(pa) {
                    self.access_line(pa, false, true);
                }
            }
        }
        // Train L2 prefetcher on L1 misses.
        if self.cfg.l2.prefetch && !all_l1 {
            let mut out = [0u64; MAX_DEGREE];
            let n = self.l2_prefetcher.train(pc, addr, &mut out);
            for &pa in &out[..n] {
                if !self.l2.probe(pa) {
                    let out2 = self.l2.access(pa, false, true);
                    if let Some(ev) = out2.evicted {
                        if ev.dirty {
                            self.mem_writes += 1;
                        }
                    }
                }
            }
        }

        let latency = if all_l1 {
            self.cfg.l1d.hit_latency
        } else if all_l2 {
            self.cfg.l1d.hit_latency + self.cfg.l2.hit_latency
        } else {
            self.cfg.l1d.hit_latency + self.cfg.l2.hit_latency + self.cfg.mem_latency
        };
        AccessOutcome { latency, l1_hit: all_l1, l2_hit: all_l2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig};

    fn small_cfg(prefetch: bool) -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 1 << 10,
                assoc: 2,
                line_bytes: 64,
                hit_latency: 2,
                prefetch,
            },
            l2: CacheConfig {
                size_bytes: 8 << 10,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 10,
                prefetch,
            },
            mem_latency: 100,
        }
    }

    #[test]
    fn latency_tiers() {
        let mut h = Hierarchy::new(small_cfg(false));
        let miss = h.access(0, 8, false, 1);
        assert_eq!(miss.latency, 112); // 2 + 10 + 100
        let hit = h.access(0, 8, false, 1);
        assert_eq!(hit.latency, 2);
        // evict from tiny L1 but keep in L2: touch enough conflicting sets
        for i in 1..64 {
            h.access(i * 64, 8, false, 1);
        }
        let l2hit = h.access(0, 8, false, 1);
        assert_eq!(l2hit.latency, 12);
    }

    #[test]
    fn spanning_access_touches_two_lines() {
        let mut h = Hierarchy::new(small_cfg(false));
        let out = h.access(60, 8, false, 1); // crosses 64-byte boundary
        assert!(!out.l1_hit);
        assert_eq!(h.l1d().stats().accesses, 2);
    }

    #[test]
    fn streaming_with_prefetch_mostly_hits() {
        let mut h = Hierarchy::new(small_cfg(true));
        for i in 0..4096u64 {
            h.access(i * 64, 64, false, 42);
        }
        let mr = h.l1d().stats().demand_miss_rate();
        assert!(mr < 0.10, "streaming miss rate {mr} too high with prefetcher");
    }

    #[test]
    fn streaming_without_prefetch_always_misses() {
        let mut h = Hierarchy::new(small_cfg(false));
        for i in 0..4096u64 {
            h.access(i * 64, 64, false, 42);
        }
        let mr = h.l1d().stats().demand_miss_rate();
        assert!(mr > 0.99, "cold streaming should miss every line, got {mr}");
    }

    #[test]
    fn dirty_l1_eviction_reaches_l2_then_memory() {
        let mut h = Hierarchy::new(small_cfg(false));
        // write a line, evict it from L1 (conflict), then flood L2
        h.access(0, 8, true, 1);
        for i in 1..=16u64 {
            h.access(i * 1024, 8, false, 1); // same L1 set (1KB/2-way/64B = 8 sets)
        }
        assert!(h.l1d().stats().writebacks >= 1);
        // now flood L2 so the dirty line leaves L2 too
        for i in 0..1024u64 {
            h.access((1 << 20) + i * 64, 8, false, 1);
        }
        assert!(h.mem_writes() >= 1);
    }

    #[test]
    fn reuse_within_l2_workingset() {
        let mut h = Hierarchy::new(small_cfg(false));
        // 4 KiB working set fits L2 (8 KiB) but not L1 (1 KiB)
        for _round in 0..8 {
            for i in 0..64u64 {
                h.access(i * 64, 8, false, 1);
            }
        }
        let s2 = h.l2().stats();
        assert!(s2.hit_rate() > 0.8, "L2 should absorb reuse, hit rate {}", s2.hit_rate());
        assert_eq!(h.mem_reads(), 64); // only cold fills
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut h = Hierarchy::new(small_cfg(false));
        h.access(0, 8, false, 1);
        h.reset_stats();
        assert_eq!(h.l1d().stats().accesses, 0);
        assert_eq!(h.mem_reads(), 0);
    }

    #[test]
    fn presets_construct() {
        let _ = Hierarchy::new(HierarchyConfig::a64fx());
        let _ = Hierarchy::new(HierarchyConfig::edge_riscv());
    }
}
