//! Cache and hierarchy configuration.

/// Geometry and timing of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be `line_bytes * assoc * sets` with
    /// power-of-two sets.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Load-to-use latency in cycles on a hit at this level.
    pub hit_latency: u32,
    /// Enable the per-PC stride prefetcher at this level.
    pub prefetch: bool,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (non-power-of-two set count
    /// or capacity not divisible by `line × assoc`).
    pub fn sets(&self) -> usize {
        let per_way = self.line_bytes * self.assoc;
        assert!(
            self.size_bytes.is_multiple_of(per_way),
            "capacity {} not divisible by line*assoc {}",
            self.size_bytes,
            per_way
        );
        let sets = self.size_bytes / per_way;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// Configuration of a two-level hierarchy plus main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (added on an L2 miss).
    pub mem_latency: u32,
}

impl HierarchyConfig {
    /// A64FX-like hierarchy (Table 2 of the paper): 64 KB 8-way L1D with
    /// a 4-cycle load-to-use latency and stride prefetcher, 8 MB 16-way
    /// L2 at 37 cycles, HBM2 at ~120 cycles.
    pub fn a64fx() -> Self {
        HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 8,
                line_bytes: 256,
                hit_latency: 4,
                prefetch: true,
            },
            l2: CacheConfig {
                size_bytes: 8 << 20,
                assoc: 16,
                line_bytes: 256,
                hit_latency: 37,
                prefetch: true,
            },
            mem_latency: 120,
        }
    }

    /// Edge RISC-V SoC hierarchy (Sargantana-like, §5.1): 32 KB L1D
    /// (2-cycle), 512 KB L2 (12-cycle), LPDDR at ~80 cycles, no
    /// prefetcher.
    pub fn edge_riscv() -> Self {
        HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                hit_latency: 2,
                prefetch: false,
            },
            l2: CacheConfig {
                size_bytes: 512 << 10,
                assoc: 8,
                line_bytes: 64,
                hit_latency: 12,
                prefetch: false,
            },
            mem_latency: 80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a64fx_geometry() {
        let c = HierarchyConfig::a64fx();
        assert_eq!(c.l1d.sets(), 64 * 1024 / (256 * 8));
        assert_eq!(c.l2.sets(), 8 * 1024 * 1024 / (256 * 16));
    }

    #[test]
    fn edge_geometry() {
        let c = HierarchyConfig::edge_riscv();
        assert_eq!(c.l1d.sets(), 128);
        assert_eq!(c.l2.sets(), 1024);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 1000,
            assoc: 3,
            line_bytes: 64,
            hit_latency: 1,
            prefetch: false,
        };
        let _ = c.sets();
    }
}
