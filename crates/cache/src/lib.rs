//! # camp-cache — set-associative cache hierarchy simulator
//!
//! Models the memory hierarchies of the paper's two evaluation platforms
//! (Table 2):
//!
//! * **A64FX-like**: 64 KB 8-way L1D (4-cycle load-to-use), 8 MB 16-way
//!   shared L2 (37-cycle), HBM2 main memory, stride prefetchers at L1/L2;
//! * **edge RISC-V SoC** (Sargantana-like): 32 KB L1D, 512 KB L2, LPDDR
//!   main memory, no prefetch.
//!
//! The simulator is usable in two modes:
//!
//! * **execution-driven** — `camp-pipeline` calls [`Hierarchy::access`]
//!   for every memory instruction and uses the returned latency;
//! * **trace-driven** — the Fig. 1 cache-miss-rate experiment replays
//!   address traces generated analytically by `camp-gemm` without running
//!   a pipeline at all.
//!
//! # Example
//!
//! ```
//! use camp_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::a64fx());
//! // A streaming read of 1 MiB: the stride prefetcher hides most misses.
//! for i in 0..(1 << 20) / 64 {
//!     h.access(i * 64, 64, false, 0);
//! }
//! assert!(h.l1d().stats().demand_miss_rate() < 0.20);
//! ```

mod cache;
mod config;
mod hierarchy;
mod prefetch;
mod stats;

pub use cache::Cache;
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{AccessOutcome, Hierarchy};
pub use prefetch::StridePrefetcher;
pub use stats::CacheStats;
