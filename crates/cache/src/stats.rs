//! Per-level cache statistics.

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads + stores issued by the program).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines evicted (any cause).
    pub evictions: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Prefetch requests issued by this level's prefetcher.
    pub prefetches_issued: u64,
    /// Demand accesses that hit on a line brought in by the prefetcher.
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Demand miss rate in [0, 1]; zero when no accesses occurred.
    pub fn demand_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Demand hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_hits += other.prefetch_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats { accesses: 10, hits: 7, misses: 3, ..CacheStats::default() };
        assert!((s.demand_miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.demand_miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats { accesses: 1, hits: 1, ..CacheStats::default() };
        let b = CacheStats { accesses: 2, misses: 2, writebacks: 1, ..CacheStats::default() };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.misses, 2);
        assert_eq!(a.writebacks, 1);
    }
}
