//! Per-PC stride prefetcher (the "Stride prefetcher" of Table 2).

/// Maximum prefetch degree supported.
pub const MAX_DEGREE: usize = 4;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// Classic reference-prediction-table stride prefetcher.
///
/// Each static memory instruction (identified by its PC) gets a table
/// entry tracking its last address and stride. After two consecutive
/// accesses with the same non-zero stride, the prefetcher emits `degree`
/// prefetch addresses ahead of the current access.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<Entry>,
    mask: u64,
    degree: usize,
}

impl StridePrefetcher {
    /// Create a prefetcher with a power-of-two `entries` table and the
    /// given prefetch `degree` (clamped to `MAX_DEGREE`).
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, degree: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        StridePrefetcher {
            table: vec![Entry::default(); entries],
            mask: entries as u64 - 1,
            degree: degree.min(MAX_DEGREE),
        }
    }

    /// Train on a demand access; returns the number of prefetch addresses
    /// written into `out`.
    pub fn train(&mut self, pc: u64, addr: u64, out: &mut [u64; MAX_DEGREE]) -> usize {
        let idx = (pc.wrapping_mul(0x9e37_79b9_7f4a_7c15) & self.mask) as usize;
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = Entry { pc, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return 0;
        }
        let stride = addr as i64 - e.last_addr as i64;
        if stride != 0 && stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.confidence = 0;
            e.stride = stride;
        }
        e.last_addr = addr;
        if e.confidence >= 1 && e.stride != 0 {
            let mut n = 0;
            for d in 1..=self.degree {
                let target = addr as i64 + e.stride * d as i64;
                if target >= 0 {
                    out[n] = target as u64;
                    n += 1;
                }
            }
            n
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_constant_stride() {
        let mut p = StridePrefetcher::new(16, 2);
        let mut out = [0u64; MAX_DEGREE];
        assert_eq!(p.train(7, 100, &mut out), 0); // first touch
        assert_eq!(p.train(7, 164, &mut out), 0); // learn stride 64
        let n = p.train(7, 228, &mut out); // confirm stride
        assert_eq!(n, 2);
        assert_eq!(out[0], 292);
        assert_eq!(out[1], 356);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(16, 2);
        let mut out = [0u64; MAX_DEGREE];
        p.train(7, 100, &mut out);
        p.train(7, 164, &mut out);
        assert!(p.train(7, 228, &mut out) > 0);
        assert_eq!(p.train(7, 1000, &mut out), 0); // break the pattern
        assert_eq!(p.train(7, 1064, &mut out), 0); // relearn
        assert!(p.train(7, 1128, &mut out) > 0);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(16, 1);
        let mut out = [0u64; MAX_DEGREE];
        p.train(3, 1000, &mut out);
        p.train(3, 900, &mut out);
        let n = p.train(3, 800, &mut out);
        assert_eq!(n, 1);
        assert_eq!(out[0], 700);
    }

    #[test]
    fn does_not_prefetch_below_zero() {
        let mut p = StridePrefetcher::new(16, 2);
        let mut out = [0u64; MAX_DEGREE];
        p.train(3, 200, &mut out);
        p.train(3, 100, &mut out);
        let n = p.train(3, 0, &mut out);
        assert_eq!(n, 0); // -100 and -200 rejected
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut p = StridePrefetcher::new(16, 2);
        let mut out = [0u64; MAX_DEGREE];
        for _ in 0..10 {
            assert_eq!(p.train(9, 512, &mut out), 0);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_table_panics() {
        let _ = StridePrefetcher::new(3, 1);
    }
}
