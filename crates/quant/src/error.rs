//! Quantization error metrics.

/// Mean squared error between a reference and a reconstruction.
///
/// # Panics
/// Panics if lengths differ or inputs are empty.
pub fn mse(reference: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(reference.len(), reconstructed.len());
    assert!(!reference.is_empty());
    reference.iter().zip(reconstructed).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>()
        / reference.len() as f64
}

/// Signal-to-quantization-noise ratio in dB (higher is better; +6 dB per
/// extra bit for a well-fit uniform quantizer).
pub fn sqnr_db(reference: &[f32], reconstructed: &[f32]) -> f64 {
    let signal = reference.iter().map(|&a| (a as f64).powi(2)).sum::<f64>();
    let noise =
        reference.iter().zip(reconstructed).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::SymmetricQuantizer;

    fn signal() -> Vec<f32> {
        (0..512).map(|i| ((i as f32) * 0.37).sin() * 3.0).collect()
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let s = signal();
        assert_eq!(mse(&s, &s), 0.0);
        assert_eq!(sqnr_db(&s, &s), f64::INFINITY);
    }

    #[test]
    fn sqnr_improves_roughly_6db_per_bit() {
        let s = signal();
        let mut prev = f64::NEG_INFINITY;
        for bits in 3..=8 {
            let q = SymmetricQuantizer::fit(&s, bits);
            let rec: Vec<f32> = s.iter().map(|&x| q.dequantize(q.quantize(x))).collect();
            let db = sqnr_db(&s, &rec);
            assert!(db > prev + 3.0, "bits {bits}: {db} dB after {prev} dB");
            prev = db;
        }
        // 8-bit should comfortably exceed 35 dB on a smooth signal
        assert!(prev > 35.0);
    }

    #[test]
    fn mse_decreases_with_bits() {
        let s = signal();
        let e4 = {
            let q = SymmetricQuantizer::fit(&s, 4);
            let rec: Vec<f32> = s.iter().map(|&x| q.dequantize(q.quantize(x))).collect();
            mse(&s, &rec)
        };
        let e8 = {
            let q = SymmetricQuantizer::fit(&s, 8);
            let rec: Vec<f32> = s.iter().map(|&x| q.dequantize(q.quantize(x))).collect();
            mse(&s, &rec)
        };
        assert!(e8 < e4 / 50.0, "e8 {e8} vs e4 {e4}");
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }
}
