//! Per-channel (per-row) quantization — the scheme production
//! frameworks use for weight matrices, where each output channel gets
//! its own scale. Improves accuracy at no kernel cost: the per-channel
//! scale folds into the output requantization.

use crate::quantizer::SymmetricQuantizer;

/// A per-channel symmetric quantizer for a row-major m×k weight matrix
/// (one scale per row / output channel).
#[derive(Debug, Clone)]
pub struct PerChannelQuantizer {
    scales: Vec<f32>,
    bits: u32,
    k: usize,
}

impl PerChannelQuantizer {
    /// Fit one scale per row of the `m×k` row-major matrix.
    ///
    /// # Panics
    /// Panics if `weights.len()` is not a multiple of `k`, or bits ∉ 2..=8.
    pub fn fit(weights: &[f32], k: usize, bits: u32) -> Self {
        assert!(k > 0 && weights.len().is_multiple_of(k), "weights must be m×k");
        assert!((2..=8).contains(&bits));
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let scales = weights
            .chunks_exact(k)
            .map(|row| {
                let max_abs = row.iter().fold(0f32, |m, &v| m.max(v.abs()));
                if max_abs == 0.0 {
                    1.0
                } else {
                    max_abs / qmax
                }
            })
            .collect();
        PerChannelQuantizer { scales, bits, k }
    }

    /// Number of channels (rows).
    pub fn channels(&self) -> usize {
        self.scales.len()
    }

    /// Scale of one channel.
    pub fn scale(&self, channel: usize) -> f32 {
        self.scales[channel]
    }

    /// Quantize the whole matrix.
    pub fn quantize_all(&self, weights: &[f32]) -> Vec<i8> {
        assert_eq!(weights.len(), self.scales.len() * self.k);
        let qmax = (1i32 << (self.bits - 1)) - 1;
        let qmin = -(1i32 << (self.bits - 1));
        weights
            .chunks_exact(self.k)
            .zip(&self.scales)
            .flat_map(|(row, &s)| {
                row.iter().map(move |&v| ((v / s).round() as i32).clamp(qmin, qmax) as i8)
            })
            .collect()
    }

    /// Dequantize one element of channel `c`.
    pub fn dequantize(&self, c: usize, q: i8) -> f32 {
        q as f32 * self.scales[c]
    }
}

/// Mean per-row *normalized* reconstruction error (MSE / row signal
/// power) of per-tensor vs per-channel quantization on the same matrix.
/// Normalizing per row is what exposes the benefit: a per-tensor scale
/// fitted to the loudest channel crushes quiet channels to zero even
/// though their absolute error looks small.
pub fn per_channel_gain(weights: &[f32], k: usize, bits: u32) -> (f64, f64) {
    let pt = SymmetricQuantizer::fit(weights, bits);
    let pc = PerChannelQuantizer::fit(weights, k, bits);
    let pcq = pc.quantize_all(weights);
    let rows = weights.len() / k;
    let mut nmse_pt = 0f64;
    let mut nmse_pc = 0f64;
    for r in 0..rows {
        let mut power = 0f64;
        let mut e_pt = 0f64;
        let mut e_pc = 0f64;
        for c in 0..k {
            let i = r * k + c;
            let w = weights[i];
            power += (w as f64).powi(2);
            let r_pt = pt.dequantize(pt.quantize(w));
            let r_pc = pc.dequantize(r, pcq[i]);
            e_pt += ((w - r_pt) as f64).powi(2);
            e_pc += ((w - r_pc) as f64).powi(2);
        }
        if power > 0.0 {
            nmse_pt += e_pt / power;
            nmse_pc += e_pc / power;
        }
    }
    (nmse_pt / rows as f64, nmse_pc / rows as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows with very different dynamic ranges — the case per-channel
    /// quantization exists for.
    fn skewed_weights(m: usize, k: usize) -> Vec<f32> {
        let mut w = Vec::with_capacity(m * k);
        for r in 0..m {
            let amp = 0.01f32 * 10f32.powi((r % 4) as i32);
            for c in 0..k {
                w.push(amp * (((r * k + c) as f32) * 0.7).sin());
            }
        }
        w
    }

    #[test]
    fn per_channel_beats_per_tensor_on_skewed_rows() {
        let w = skewed_weights(8, 32);
        let (pt, pc) = per_channel_gain(&w, 32, 8);
        assert!(pc < pt / 10.0, "per-channel {pc} should be ≪ per-tensor {pt}");
    }

    #[test]
    fn roundtrip_error_bounded_per_channel() {
        let w = skewed_weights(4, 16);
        let q = PerChannelQuantizer::fit(&w, 16, 8);
        let qs = q.quantize_all(&w);
        for (i, &v) in w.iter().enumerate() {
            let back = q.dequantize(i / 16, qs[i]);
            assert!((back - v).abs() <= q.scale(i / 16) * 0.51 + 1e-9);
        }
    }

    #[test]
    fn channel_count_and_scales() {
        let w = skewed_weights(6, 10);
        let q = PerChannelQuantizer::fit(&w, 10, 4);
        assert_eq!(q.channels(), 6);
        for c in 0..6 {
            assert!(q.scale(c) > 0.0);
        }
    }

    #[test]
    fn zero_row_gets_unit_scale() {
        let mut w = skewed_weights(2, 8);
        for v in w.iter_mut().take(8) {
            *v = 0.0;
        }
        let q = PerChannelQuantizer::fit(&w, 8, 8);
        assert_eq!(q.scale(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "m×k")]
    fn bad_shape_panics() {
        let _ = PerChannelQuantizer::fit(&[1.0; 10], 3, 8);
    }
}
