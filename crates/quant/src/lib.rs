//! # camp-quant — quantization stack
//!
//! The software layer that feeds CAMP its integer operands:
//!
//! * [`quantizer`] — symmetric and affine (asymmetric) linear
//!   quantization at any bit-width 2–8, per-tensor or per-channel, plus
//!   requantization of i32 accumulators back to narrow outputs (the
//!   gemmlowp/TFLite fixed-point pipeline);
//! * [`error`] — quantization error metrics (MSE, SQNR);
//! * [`accuracy`] — the Fig. 7 substitution study: a small MLP trained
//!   in pure Rust on a synthetic Gaussian-mixture classification task,
//!   then evaluated with weights and inputs quantized at every (2–8)-bit
//!   combination. The paper quotes a survey for this figure; the
//!   substitution preserves the relevant behaviour (accuracy flat down
//!   to ~4 bits, collapsing below), which is the basis for CAMP's 4-bit
//!   building-block choice (§3).

pub mod accuracy;
pub mod error;
pub mod per_channel;
pub mod quantizer;

pub use accuracy::{run_accuracy_grid, AccuracyGrid, StudyConfig};
pub use error::{mse, sqnr_db};
pub use per_channel::{per_channel_gain, PerChannelQuantizer};
pub use quantizer::{AffineQuantizer, QuantScheme, SymmetricQuantizer};
