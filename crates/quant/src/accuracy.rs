//! The Fig. 7 accuracy-vs-bit-width study (substitution).
//!
//! The paper reproduces a survey's result that CNN top-1 accuracy is
//! roughly flat down to 4-bit weights/inputs and collapses below — the
//! justification for CAMP's 4-bit building block. We cannot retrain
//! AlexNet/ResNet/VGG/MobileNet here, so we substitute the smallest
//! experiment with the same mechanism: a one-hidden-layer MLP trained
//! with SGD on a synthetic Gaussian-mixture classification task, then
//! evaluated with *post-training quantization* of both weights and
//! inputs at every (2..=8)² bit combination. The integer forward pass
//! uses exactly the arithmetic CAMP executes (i8 products, i32
//! accumulation).

use crate::quantizer::SymmetricQuantizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the study.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Input dimensionality.
    pub features: usize,
    /// Number of classes (Gaussian mixture components).
    pub classes: usize,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training examples.
    pub train_n: usize,
    /// Test examples.
    pub test_n: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            features: 16,
            classes: 4,
            hidden: 32,
            train_n: 2000,
            test_n: 1000,
            epochs: 30,
            seed: 7,
        }
    }
}

/// Accuracy results over the (weight-bits × input-bits) grid.
#[derive(Debug, Clone)]
pub struct AccuracyGrid {
    /// Float (fp32) test accuracy of the trained model.
    pub fp32_accuracy: f64,
    /// `grid[(wb-2)][(ib-2)]` = top-1 accuracy with wb-bit weights and
    /// ib-bit inputs, wb/ib ∈ 2..=8.
    pub grid: [[f64; 7]; 7],
}

impl AccuracyGrid {
    /// Accuracy at a (weight-bits, input-bits) point.
    ///
    /// # Panics
    /// Panics if either width is outside 2..=8.
    pub fn at(&self, weight_bits: u32, input_bits: u32) -> f64 {
        assert!((2..=8).contains(&weight_bits) && (2..=8).contains(&input_bits));
        self.grid[(weight_bits - 2) as usize][(input_bits - 2) as usize]
    }
}

struct Mlp {
    w1: Vec<f32>, // hidden × features
    b1: Vec<f32>,
    w2: Vec<f32>, // classes × hidden
    b2: Vec<f32>,
    features: usize,
    hidden: usize,
    classes: usize,
}

fn gen_centroids(cfg: &StudyConfig, rng: &mut StdRng) -> Vec<f32> {
    (0..cfg.classes * cfg.features).map(|_| rng.gen_range(-1.5f32..1.5)).collect()
}

fn gen_data(
    cfg: &StudyConfig,
    centroids: &[f32],
    n: usize,
    rng: &mut StdRng,
) -> (Vec<f32>, Vec<usize>) {
    let mut xs = Vec::with_capacity(n * cfg.features);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % cfg.classes;
        for f in 0..cfg.features {
            let noise: f32 = rng.gen_range(-0.45..0.45);
            xs.push(centroids[c * cfg.features + f] + noise);
        }
        ys.push(c);
    }
    (xs, ys)
}

fn relu(x: f32) -> f32 {
    x.max(0.0)
}

impl Mlp {
    fn new(cfg: &StudyConfig, rng: &mut StdRng) -> Self {
        let scale1 = (2.0 / cfg.features as f32).sqrt();
        let scale2 = (2.0 / cfg.hidden as f32).sqrt();
        Mlp {
            w1: (0..cfg.hidden * cfg.features).map(|_| rng.gen_range(-scale1..scale1)).collect(),
            b1: vec![0.0; cfg.hidden],
            w2: (0..cfg.classes * cfg.hidden).map(|_| rng.gen_range(-scale2..scale2)).collect(),
            b2: vec![0.0; cfg.classes],
            features: cfg.features,
            hidden: cfg.hidden,
            classes: cfg.classes,
        }
    }

    fn forward(&self, x: &[f32], h: &mut [f32], out: &mut [f32]) {
        for j in 0..self.hidden {
            let mut acc = self.b1[j];
            for f in 0..self.features {
                acc += self.w1[j * self.features + f] * x[f];
            }
            h[j] = relu(acc);
        }
        for c in 0..self.classes {
            let mut acc = self.b2[c];
            for j in 0..self.hidden {
                acc += self.w2[c * self.hidden + j] * h[j];
            }
            out[c] = acc;
        }
    }

    fn train(&mut self, xs: &[f32], ys: &[usize], epochs: usize, lr: f32) {
        let n = ys.len();
        let mut h = vec![0.0f32; self.hidden];
        let mut out = vec![0.0f32; self.classes];
        for _ in 0..epochs {
            for i in 0..n {
                let x = &xs[i * self.features..(i + 1) * self.features];
                self.forward(x, &mut h, &mut out);
                // softmax + cross-entropy gradient
                let max = out.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = out.iter().map(|&o| (o - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                let mut dlogits: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
                dlogits[ys[i]] -= 1.0;
                // backprop to hidden
                let mut dh = vec![0.0f32; self.hidden];
                for c in 0..self.classes {
                    for j in 0..self.hidden {
                        dh[j] += dlogits[c] * self.w2[c * self.hidden + j];
                        self.w2[c * self.hidden + j] -= lr * dlogits[c] * h[j];
                    }
                    self.b2[c] -= lr * dlogits[c];
                }
                for j in 0..self.hidden {
                    if h[j] <= 0.0 {
                        continue;
                    }
                    for f in 0..self.features {
                        self.w1[j * self.features + f] -= lr * dh[j] * x[f];
                    }
                    self.b1[j] -= lr * dh[j];
                }
            }
        }
    }

    fn accuracy_fp32(&self, xs: &[f32], ys: &[usize]) -> f64 {
        let mut h = vec![0.0f32; self.hidden];
        let mut out = vec![0.0f32; self.classes];
        let mut correct = 0;
        for i in 0..ys.len() {
            self.forward(&xs[i * self.features..(i + 1) * self.features], &mut h, &mut out);
            let pred = argmax(&out);
            if pred == ys[i] {
                correct += 1;
            }
        }
        correct as f64 / ys.len() as f64
    }

    /// Integer forward pass with wb-bit weights and ib-bit inputs —
    /// the arithmetic CAMP executes (narrow products, i32 accumulate).
    fn accuracy_quantized(&self, xs: &[f32], ys: &[usize], wb: u32, ib: u32) -> f64 {
        let qw1 = SymmetricQuantizer::fit(&self.w1, wb);
        let qw2 = SymmetricQuantizer::fit(&self.w2, wb);
        let w1q: Vec<i8> = self.w1.iter().map(|&w| qw1.quantize(w)).collect();
        let w2q: Vec<i8> = self.w2.iter().map(|&w| qw2.quantize(w)).collect();
        let qx = SymmetricQuantizer::fit(xs, ib);

        let mut correct = 0;
        let mut hq = vec![0f32; self.hidden];
        let mut out = vec![0f32; self.classes];
        for i in 0..ys.len() {
            let x = &xs[i * self.features..(i + 1) * self.features];
            let xq: Vec<i8> = x.iter().map(|&v| qx.quantize(v)).collect();
            // layer 1: integer MACs, float rescale at the end
            for j in 0..self.hidden {
                let mut acc = 0i32;
                for f in 0..self.features {
                    acc += w1q[j * self.features + f] as i32 * xq[f] as i32;
                }
                hq[j] = relu(acc as f32 * qw1.scale * qx.scale + self.b1[j]);
            }
            // layer 2: re-quantize the hidden activations at ib bits
            let qh = SymmetricQuantizer::fit(&hq, ib);
            let hqq: Vec<i8> = hq.iter().map(|&v| qh.quantize(v)).collect();
            for c in 0..self.classes {
                let mut acc = 0i32;
                for j in 0..self.hidden {
                    acc += w2q[c * self.hidden + j] as i32 * hqq[j] as i32;
                }
                out[c] = acc as f32 * qw2.scale * qh.scale + self.b2[c];
            }
            if argmax(&out) == ys[i] {
                correct += 1;
            }
        }
        correct as f64 / ys.len() as f64
    }
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Train the model once and evaluate the full (weight-bits × input-bits)
/// accuracy grid — the data behind Fig. 7.
pub fn run_accuracy_grid(cfg: &StudyConfig) -> AccuracyGrid {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let centroids = gen_centroids(cfg, &mut rng);
    let (train_x, train_y) = gen_data(cfg, &centroids, cfg.train_n, &mut rng);
    let (test_x, test_y) = gen_data(cfg, &centroids, cfg.test_n, &mut rng);

    let mut mlp = Mlp::new(cfg, &mut rng);
    mlp.train(&train_x, &train_y, cfg.epochs, 0.02);

    let fp32 = mlp.accuracy_fp32(&test_x, &test_y);
    let mut grid = [[0.0; 7]; 7];
    for wb in 2..=8u32 {
        for ib in 2..=8u32 {
            grid[(wb - 2) as usize][(ib - 2) as usize] =
                mlp.accuracy_quantized(&test_x, &test_y, wb, ib);
        }
    }
    AccuracyGrid { fp32_accuracy: fp32, grid }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StudyConfig {
        StudyConfig { train_n: 800, test_n: 400, epochs: 12, ..StudyConfig::default() }
    }

    #[test]
    fn fp32_model_learns_the_task() {
        let g = run_accuracy_grid(&quick_cfg());
        assert!(g.fp32_accuracy > 0.85, "fp32 accuracy {}", g.fp32_accuracy);
    }

    #[test]
    fn eight_bit_matches_fp32_closely() {
        let g = run_accuracy_grid(&quick_cfg());
        assert!(
            g.at(8, 8) > g.fp32_accuracy - 0.05,
            "8-bit {} vs fp32 {}",
            g.at(8, 8),
            g.fp32_accuracy
        );
    }

    #[test]
    fn four_bit_stays_reasonable_two_bit_degrades() {
        // The Fig. 7 shape: flat to 4 bits, cliff at 2 bits.
        let g = run_accuracy_grid(&quick_cfg());
        let acc4 = g.at(4, 4);
        let acc2 = g.at(2, 2);
        assert!(acc4 > g.fp32_accuracy - 0.12, "4-bit collapsed: {acc4}");
        assert!(acc2 < acc4, "2-bit ({acc2}) should degrade vs 4-bit ({acc4})");
    }

    #[test]
    fn grid_is_monotone_ish_in_weight_bits() {
        let g = run_accuracy_grid(&quick_cfg());
        // 8-bit weights at least as good as 2-bit weights at 8-bit inputs
        assert!(g.at(8, 8) >= g.at(2, 8) - 0.02);
    }

    #[test]
    #[should_panic]
    fn at_rejects_out_of_range() {
        let g = AccuracyGrid { fp32_accuracy: 1.0, grid: [[0.0; 7]; 7] };
        let _ = g.at(9, 4);
    }
}
