//! Linear quantizers: symmetric and affine, 2–8 bits.

/// Which quantization scheme a layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantScheme {
    /// Symmetric: zero-point 0, range ±max|x|.
    Symmetric,
    /// Affine/asymmetric: zero-point shifts the range to [min, max].
    Affine,
}

/// Symmetric linear quantizer to `bits`-bit signed integers.
#[derive(Debug, Clone, Copy)]
pub struct SymmetricQuantizer {
    /// Scale (one LSB in real units).
    pub scale: f32,
    /// Bit width (2–8).
    pub bits: u32,
}

impl SymmetricQuantizer {
    /// Fit the quantizer to the data range.
    ///
    /// # Panics
    /// Panics unless `2 <= bits <= 8`.
    pub fn fit(data: &[f32], bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "bit width {bits} out of range");
        let max_abs = data.iter().fold(0f32, |m, &v| m.max(v.abs()));
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax };
        SymmetricQuantizer { scale, bits }
    }

    /// Largest representable quantized magnitude.
    pub fn qmax(&self) -> i32 {
        (1 << (self.bits - 1)) - 1
    }

    /// Smallest representable quantized value.
    pub fn qmin(&self) -> i32 {
        -(1 << (self.bits - 1))
    }

    /// Quantize one value (round-to-nearest, saturating).
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() as i32;
        q.clamp(self.qmin(), self.qmax()) as i8
    }

    /// Dequantize one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantize a slice.
    pub fn quantize_all(&self, xs: &[f32]) -> Vec<i8> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

/// Affine (asymmetric) quantizer: `x ≈ scale · (q − zero_point)`.
#[derive(Debug, Clone, Copy)]
pub struct AffineQuantizer {
    /// Scale.
    pub scale: f32,
    /// Zero point in the quantized domain.
    pub zero_point: i32,
    /// Bit width.
    pub bits: u32,
}

impl AffineQuantizer {
    /// Fit to the data's [min, max] range.
    ///
    /// # Panics
    /// Panics unless `2 <= bits <= 8`.
    pub fn fit(data: &[f32], bits: u32) -> Self {
        assert!((2..=8).contains(&bits));
        let (mut lo, mut hi) = (0f32, 0f32);
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let qmin = -(1i32 << (bits - 1));
        let qmax = (1i32 << (bits - 1)) - 1;
        let span = (hi - lo).max(f32::EPSILON);
        let scale = span / (qmax - qmin) as f32;
        let zero_point = (qmin as f32 - lo / scale).round() as i32;
        AffineQuantizer { scale, zero_point: zero_point.clamp(qmin, qmax), bits }
    }

    /// Quantize one value.
    pub fn quantize(&self, x: f32) -> i8 {
        let qmin = -(1i32 << (self.bits - 1));
        let qmax = (1i32 << (self.bits - 1)) - 1;
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(qmin, qmax) as i8
    }

    /// Dequantize one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }
}

/// Requantize an i32 accumulator to an n-bit output using the
/// fixed-point multiplier + shift scheme of gemmlowp/TFLite:
/// `out = sat( (acc · mult) >> (31 + shift) )`.
pub fn requantize(acc: i32, mult: i32, shift: i32, bits: u32) -> i8 {
    let prod = (acc as i64) * (mult as i64);
    let total_shift = 31 + shift;
    let rounded = (prod + (1i64 << (total_shift - 1))) >> total_shift;
    let qmin = -(1i64 << (bits - 1));
    let qmax = (1i64 << (bits - 1)) - 1;
    rounded.clamp(qmin, qmax) as i8
}

/// Compute the (multiplier, shift) pair approximating a real-valued
/// rescale factor for [`requantize`].
pub fn requant_params(real_scale: f64) -> (i32, i32) {
    assert!(real_scale > 0.0, "scale must be positive");
    let mut shift = 0;
    let mut s = real_scale;
    while s < 0.5 {
        s *= 2.0;
        shift += 1;
    }
    while s >= 1.0 {
        s /= 2.0;
        shift -= 1;
    }
    let mult = (s * (1i64 << 31) as f64).round() as i32;
    (mult, shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_roundtrip_error_bounded() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) / 10.0).collect();
        let q = SymmetricQuantizer::fit(&data, 8);
        for &x in &data {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.scale * 0.5 + 1e-6, "err {err} scale {}", q.scale);
        }
    }

    #[test]
    fn symmetric_4bit_range() {
        let q = SymmetricQuantizer::fit(&[-1.0, 1.0], 4);
        assert_eq!(q.qmax(), 7);
        assert_eq!(q.qmin(), -8);
        assert_eq!(q.quantize(1.0), 7);
        assert_eq!(q.quantize(-1.0), -7); // symmetric clip
        assert_eq!(q.quantize(100.0), 7); // saturates
    }

    #[test]
    fn affine_represents_zero_exactly() {
        let data = vec![0.0f32, 0.5, 1.0, 2.0, 3.5];
        let q = AffineQuantizer::fit(&data, 8);
        let z = q.quantize(0.0);
        assert!((q.dequantize(z) - 0.0).abs() < q.scale, "zero not near-exact");
    }

    #[test]
    fn affine_roundtrip_error_bounded() {
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.13 - 2.0).collect();
        let q = AffineQuantizer::fit(&data, 6);
        for &x in &data {
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.scale, "err {err} scale {}", q.scale);
        }
    }

    #[test]
    fn requantize_matches_float_rescale() {
        let real_scale = 0.0123f64;
        let (mult, shift) = requant_params(real_scale);
        for acc in [-100000i32, -999, -1, 0, 1, 4567, 123456] {
            let expect = (acc as f64 * real_scale).round();
            let got = requantize(acc, mult, shift, 8) as f64;
            let clamped = expect.clamp(-128.0, 127.0);
            assert!((got - clamped).abs() <= 1.0, "acc {acc}: {got} vs {clamped}");
        }
    }

    #[test]
    fn requant_params_normalized() {
        for s in [0.9, 0.011, 0.5, 0.499999, 3.7] {
            let (mult, _shift) = requant_params(s);
            assert!(mult >= (1 << 30), "multiplier {mult} not normalized");
        }
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn bits_out_of_range_panics() {
        let _ = SymmetricQuantizer::fit(&[1.0], 9);
    }

    #[test]
    fn zero_data_does_not_divide_by_zero() {
        let q = SymmetricQuantizer::fit(&[0.0, 0.0], 8);
        assert_eq!(q.quantize(0.0), 0);
    }
}
