//! Offline stand-in for [loom](https://docs.rs/loom): an exhaustive
//! interleaving model checker for the workspace's concurrency core.
//!
//! The build environment has no crates.io access, so this shim
//! implements the minimal loom API subset `camp-core`'s models use —
//! [`model()`], [`thread::spawn`], [`sync::Mutex`], [`sync::Condvar`]
//! and [`sync::atomic`] — backed by a depth-first schedule explorer:
//!
//! * Every synchronization operation (lock, unlock, condvar
//!   wait/notify, atomic access, spawn, join, yield) is a **schedule
//!   point**. A central per-execution scheduler grants the run token
//!   to exactly one "loom thread" (a real OS thread, suspended between
//!   grants) at a time, so an execution is one deterministic
//!   interleaving of the model's threads.
//! * At each schedule point the scheduler records which other threads
//!   *could* have run. After an execution finishes, the explorer
//!   backtracks to the deepest decision with an untried alternative
//!   and replays the prefix, diverging there — classic DFS over the
//!   schedule tree, the same exploration loom performs.
//! * **Preemption bounding** keeps the tree tractable: switching away
//!   from a thread that could have continued costs one preemption,
//!   and schedules beyond [`model::Builder::preemption_bound`] are
//!   pruned. Forced switches (the running thread blocked or finished)
//!   are free. Bounded search is sound for a bound of b context
//!   switches: every bug reachable with ≤ b preemptions is found.
//! * **Deadlocks** (every unfinished thread blocked) and **lost
//!   wakeups** (a condvar wait nobody will ever notify) surface as a
//!   model failure naming the blocked threads, with the decision trace
//!   that led there.
//!
//! What this shim does *not* model (and the real loom does): weak
//! memory orderings (every atomic here is explored with sequentially
//! consistent semantics — `Ordering` arguments are accepted and
//! ignored) and spurious condvar wakeups. The models in
//! `crates/core/tests/model/` only rely on interleaving exploration,
//! so the subset is sufficient for the happens-before arguments they
//! check.
//!
//! ```
//! use std::sync::atomic::Ordering;
//!
//! let report = loom::model::Builder::new().check(|| {
//!     let flag = std::sync::Arc::new(loom::sync::atomic::AtomicUsize::new(0));
//!     let f2 = std::sync::Arc::clone(&flag);
//!     let h = loom::thread::spawn(move || f2.fetch_add(1, Ordering::SeqCst));
//!     flag.fetch_add(1, Ordering::SeqCst);
//!     h.join().unwrap();
//!     assert_eq!(flag.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.iterations >= 2, "both orders of the two increments explored");
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

// ---- execution state ------------------------------------------------------

/// Why a loom thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// Eligible to be granted the token.
    Runnable,
    /// Wants mutex `m`; runnable once `m` is free.
    BlockedMutex(usize),
    /// Parked in `Condvar::wait` on cv, holding nothing; must be
    /// notified, then reacquire `mutex`.
    WaitingCv {
        cv: usize,
        mutex: usize,
        notified: bool,
    },
    /// Waiting for thread `t` to finish.
    Joining(usize),
    Finished,
}

/// One schedule decision: the thread granted the token and the
/// alternatives not yet explored from this point.
#[derive(Debug, Clone)]
struct Decision {
    chosen: usize,
    pending: Vec<usize>,
}

#[derive(Debug, Default)]
struct MutexState {
    locked: bool,
}

#[derive(Debug, Default)]
struct CvState {
    /// FIFO queue of waiting tids (notify_one wakes the head).
    waiters: VecDeque<usize>,
}

struct ExecState {
    threads: Vec<Run>,
    /// Thread currently holding the run token (None while the
    /// scheduler is deciding or the execution is winding down).
    active: Option<usize>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    /// Decisions of this execution: replayed prefix + fresh suffix.
    trace: Vec<Decision>,
    /// How many leading decisions replay the previous execution.
    replay_len: usize,
    step: usize,
    preemptions: usize,
    preemption_bound: usize,
    failure: Option<String>,
    aborting: bool,
}

struct Execution {
    state: OsMutex<ExecState>,
    /// Woken whenever `active` changes or the execution aborts.
    grant: OsCondvar,
}

impl Execution {
    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // the explorer's own lock is never poisoned on purpose: a
        // panicking model thread releases it before unwinding user code
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Per-OS-thread identity inside a model execution.
#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn require_ctx(op: &str) -> Ctx {
    current().unwrap_or_else(|| {
        panic!("loom::{op} used outside loom::model — wrap the test body in loom::model(|| ...)")
    })
}

/// Marker payload unwinding threads out of a dead execution; never
/// surfaces to the user (the model reports the original failure).
struct Abort;

impl ExecState {
    fn runnable(&self, tid: usize) -> bool {
        match self.threads[tid] {
            Run::Runnable => true,
            Run::BlockedMutex(m) => !self.mutexes[m].locked,
            Run::WaitingCv { mutex, notified, .. } => notified && !self.mutexes[mutex].locked,
            Run::Joining(t) => self.threads[t] == Run::Finished,
            Run::Finished => false,
        }
    }

    fn runnable_set(&self) -> Vec<usize> {
        (0..self.threads.len()).filter(|&t| self.runnable(t)).collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| *t == Run::Finished)
    }

    fn describe_blocked(&self) -> String {
        let mut out = Vec::new();
        for (t, st) in self.threads.iter().enumerate() {
            let what = match st {
                Run::Runnable => continue,
                Run::Finished => continue,
                Run::BlockedMutex(m) => format!("thread {t} blocked on mutex {m}"),
                Run::WaitingCv { cv, notified: false, .. } => {
                    format!("thread {t} waiting on condvar {cv} (never notified)")
                }
                Run::WaitingCv { cv, mutex, .. } => {
                    format!("thread {t} notified on condvar {cv} but mutex {mutex} never freed")
                }
                Run::Joining(v) => format!("thread {t} joining thread {v}"),
            };
            out.push(what);
        }
        out.join("; ")
    }
}

/// Mark the execution failed and wake every suspended thread so it can
/// unwind out of the model.
fn fail(exec: &Execution, st: &mut ExecState, msg: String) {
    if st.failure.is_none() {
        let trace: Vec<usize> = st.trace.iter().map(|d| d.chosen).collect();
        st.failure = Some(format!("{msg}\n  schedule trace (chosen tids): {trace:?}"));
    }
    st.aborting = true;
    st.active = None;
    exec.grant.notify_all();
}

/// The heart of the explorer: a schedule point. Called with the
/// execution lock held and the current thread's `Run` state already
/// updated for whatever it is about to do; picks the next thread to
/// run (replaying or extending the decision trace), then suspends the
/// caller until it is granted the token again.
fn schedule(ctx: &Ctx, mut st: std::sync::MutexGuard<'_, ExecState>) {
    let exec = &ctx.exec;
    let me = ctx.tid;
    if st.aborting {
        drop(st);
        // a sync op reached from a Drop while this thread is already
        // unwinding (e.g. a pool joining its workers during an abort)
        // must not panic again — that would escalate to a process
        // abort and eat the model's failure report
        if std::thread::panicking() {
            return;
        }
        std::panic::panic_any(Abort);
    }

    let runnable = st.runnable_set();
    if runnable.is_empty() {
        if st.all_finished() {
            // nothing left to schedule; the model loop notices
            st.active = None;
            exec.grant.notify_all();
            return;
        }
        let blocked = st.describe_blocked();
        fail(exec, &mut st, format!("deadlock: no runnable thread ({blocked})"));
        drop(st);
        std::panic::panic_any(Abort);
    }

    let me_runnable = runnable.contains(&me);
    let step = st.step;
    let chosen = if step < st.replay_len {
        // replaying the prefix of the previous execution (with the
        // backtracked decision substituted at its end)
        let c = st.trace[step].chosen;
        assert!(
            st.runnable(c),
            "non-deterministic model: replayed thread {c} not runnable at step {step}"
        );
        c
    } else {
        // fresh decision: default to continuing the current thread
        // (free); every other runnable thread is an alternative, but
        // switching away from a still-runnable thread costs a
        // preemption and is pruned beyond the bound
        let default = if me_runnable { me } else { runnable[0] };
        let pending: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&t| t != default)
            .filter(|&_t| !me_runnable || st.preemptions < st.preemption_bound)
            .collect();
        st.trace.push(Decision { chosen: default, pending });
        default
    };
    if me_runnable && chosen != me {
        st.preemptions += 1;
    }
    st.step += 1;
    st.active = Some(chosen);
    exec.grant.notify_all();

    while st.active != Some(me) {
        if st.aborting {
            drop(st);
            if std::thread::panicking() {
                return;
            }
            std::panic::panic_any(Abort);
        }
        st = exec.grant.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    // granted: resolve whatever this thread was blocked on
    match st.threads[me] {
        Run::BlockedMutex(m) => {
            debug_assert!(!st.mutexes[m].locked, "scheduler granted a held mutex");
            st.mutexes[m].locked = true;
            st.threads[me] = Run::Runnable;
        }
        Run::WaitingCv { mutex, notified, .. } => {
            debug_assert!(notified && !st.mutexes[mutex].locked);
            st.mutexes[mutex].locked = true;
            st.threads[me] = Run::Runnable;
        }
        Run::Joining(_) | Run::Runnable | Run::Finished => {}
    }
}

/// Schedule-point wrapper for threads whose state was just set to a
/// blocked variant (hand the token away, come back when resolvable).
fn yield_point(ctx: &Ctx) {
    let st = ctx.exec.lock();
    schedule(ctx, st);
}

/// A thread is done (returned or unwound): mark finished and hand the
/// token to whoever can run.
fn finish_thread(ctx: &Ctx, panicked_outside_abort: bool) {
    let exec = &ctx.exec;
    let mut st = exec.lock();
    st.threads[ctx.tid] = Run::Finished;
    if panicked_outside_abort {
        fail(
            exec,
            &mut st,
            format!("thread {} panicked inside the model (see payload above)", ctx.tid),
        );
        return;
    }
    if st.aborting {
        return;
    }
    let runnable = st.runnable_set();
    if let Some(&next) = runnable.first() {
        st.active = Some(next);
        exec.grant.notify_all();
    } else if st.all_finished() {
        st.active = None;
        exec.grant.notify_all();
    } else {
        let blocked = st.describe_blocked();
        fail(exec, &mut st, format!("deadlock: no runnable thread ({blocked})"));
    }
}

// ---- public: model() ------------------------------------------------------

/// Exploration outcome of a completed (non-failing) model run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct interleavings executed. The acceptance gate
    /// for a model is usually `iterations > 1`: the schedule tree was
    /// genuinely branched, not a single forced path.
    pub iterations: usize,
}

pub mod model {
    //! [`Builder`] for configured model runs (mirrors `loom::model::Builder`).

    use super::*;

    /// Configured model check; [`super::model()`] is `Builder::new().check(f)`.
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum context switches away from a still-runnable thread
        /// per execution. 2 catches every bug two forced reorderings
        /// can expose and keeps 3–4-thread protocol models tractable.
        pub preemption_bound: usize,
        /// Hard cap on executions: exceeding it fails the model run
        /// loudly (a model-checking gate must not silently truncate).
        pub max_iterations: usize,
    }

    impl Default for Builder {
        fn default() -> Self {
            Builder { preemption_bound: 2, max_iterations: 100_000 }
        }
    }

    impl Builder {
        pub fn new() -> Self {
            Builder::default()
        }

        /// Exhaustively run `f` under every schedule the bound admits.
        ///
        /// # Panics
        /// Panics (with the failing decision trace) if any execution
        /// panics, deadlocks, or the iteration cap is exceeded.
        pub fn check<F: Fn()>(&self, f: F) -> Report {
            run_model(self, &f)
        }
    }
}

/// Exhaustively explore every interleaving of `f`'s loom threads under
/// the default bounds; see [`model::Builder`].
pub fn model<F: Fn()>(f: F) -> Report {
    model::Builder::new().check(f)
}

fn run_model<F: Fn()>(builder: &model::Builder, f: &F) -> Report {
    let mut replay: Vec<Decision> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= builder.max_iterations,
            "loom model exceeded max_iterations={} — raise the bound or shrink the model",
            builder.max_iterations
        );
        let exec = Arc::new(Execution {
            state: OsMutex::new(ExecState {
                threads: vec![Run::Runnable],
                active: Some(0),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                replay_len: replay.len(),
                trace: replay.clone(),
                step: 0,
                preemptions: 0,
                preemption_bound: builder.preemption_bound,
                failure: None,
                aborting: false,
            }),
            grant: OsCondvar::new(),
        });

        // the caller's thread doubles as loom thread 0
        let ctx = Ctx { exec: Arc::clone(&exec), tid: 0 };
        CTX.with(|c| *c.borrow_mut() = Some(ctx.clone()));
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let panicked = match &outcome {
            Ok(()) => false,
            Err(p) => !p.is::<Abort>(),
        };
        finish_thread(&ctx, panicked);
        // let the remaining threads (if any) run to completion or fail
        {
            let mut st = exec.lock();
            while !st.all_finished() && !st.aborting {
                st = exec.grant.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        // OS threads of an aborting execution still need to observe the
        // abort and unwind before the execution state is torn down
        let handles = OS_HANDLES.with(|h| std::mem::take(&mut *h.borrow_mut()));
        for h in handles {
            let _ = h.join();
        }
        CTX.with(|c| *c.borrow_mut() = None);

        let st = exec.lock();
        if let Some(msg) = &st.failure {
            let schedule: Vec<usize> = st.trace.iter().map(|d| d.chosen).collect();
            panic!(
                "loom model failed after {iterations} interleaving(s): {msg}\n  \
                 full schedule: {schedule:?}"
            );
        }

        // backtrack: deepest decision with an untried alternative
        let mut trace = st.trace.clone();
        drop(st);
        let mut next = None;
        while let Some(mut d) = trace.pop() {
            if let Some(alt) = d.pending.pop() {
                d.chosen = alt;
                trace.push(d);
                next = Some(trace);
                break;
            }
        }
        match next {
            Some(prefix) => replay = prefix,
            None => return Report { iterations },
        }
    }
}

thread_local! {
    /// OS join handles of the loom threads spawned by the execution
    /// running on this thread (thread 0 collects them all: spawns from
    /// other loom threads re-register here via the execution teardown).
    static OS_HANDLES: RefCell<Vec<std::thread::JoinHandle<()>>> = const { RefCell::new(Vec::new()) };
}

// ---- public: thread -------------------------------------------------------

pub mod thread {
    //! Model-managed threads (mirrors `std::thread` / `loom::thread`).

    use super::*;

    /// Handle to a loom thread; [`JoinHandle::join`] is a schedule
    /// point that blocks until the thread finishes.
    pub struct JoinHandle<T> {
        tid: usize,
        slot: Arc<OsMutex<Option<std::thread::Result<T>>>>,
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle").field("tid", &self.tid).finish()
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish; returns its result, or the
        /// panic payload if it unwound.
        pub fn join(self) -> std::thread::Result<T> {
            let ctx = require_ctx("thread::JoinHandle::join");
            {
                let mut st = ctx.exec.lock();
                if st.threads[self.tid] != Run::Finished {
                    st.threads[ctx.tid] = Run::Joining(self.tid);
                }
                schedule(&ctx, st);
            }
            let mut st = ctx.exec.lock();
            st.threads[ctx.tid] = Run::Runnable;
            drop(st);
            match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(r) => r,
                // only reachable while the execution aborts (the joined
                // thread unwound before storing its result)
                None => Err(Box::new(Abort)),
            }
        }
    }

    /// Named-thread builder (mirrors `std::thread::Builder`).
    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder::default()
        }

        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawn a loom thread; scheduling decides when it first runs.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let ctx = require_ctx("thread::spawn");
            let exec = Arc::clone(&ctx.exec);
            let tid = {
                let mut st = exec.lock();
                st.threads.push(Run::Runnable);
                st.threads.len() - 1
            };
            let slot: Arc<OsMutex<Option<std::thread::Result<T>>>> = Arc::new(OsMutex::new(None));
            let thread_slot = Arc::clone(&slot);
            let child = Ctx { exec, tid };
            let os = std::thread::Builder::new()
                .name(self.name.unwrap_or_else(|| format!("loom-{tid}")))
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some(child.clone()));
                    // park until the scheduler's first grant. NOT a
                    // decision point: the parent's spawn call already
                    // scheduled, and this thread reaches here at an
                    // arbitrary real-time moment — running decision
                    // logic now would race the token holder's schedule
                    // calls and make trace replay non-deterministic
                    let granted = {
                        let mut st = child.exec.lock();
                        loop {
                            if st.aborting {
                                break false;
                            }
                            if st.active == Some(child.tid) {
                                break true;
                            }
                            st = child.exec.grant.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    if !granted {
                        // execution failed before this thread ever ran
                        child.exec.lock().threads[child.tid] = Run::Finished;
                        return;
                    }
                    let out = catch_unwind(AssertUnwindSafe(f));
                    let panicked = match &out {
                        Ok(_) => false,
                        Err(p) => !p.is::<Abort>(),
                    };
                    *thread_slot.lock().unwrap_or_else(|e| e.into_inner()) = match out {
                        Ok(v) => Some(Ok(v)),
                        Err(p) => Some(Err(p)),
                    };
                    finish_thread(&child, panicked);
                })?;
            OS_HANDLES.with(|h| h.borrow_mut().push(os));
            // the spawn itself is a schedule point: the child may run
            // immediately or the parent may race ahead
            yield_point(&ctx);
            Ok(JoinHandle { tid, slot })
        }
    }

    /// Spawn a loom thread (see [`Builder::spawn`]).
    ///
    /// # Panics
    /// Panics outside [`super::model()`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn loom thread")
    }

    /// Voluntary schedule point.
    pub fn yield_now() {
        if let Some(ctx) = current() {
            yield_point(&ctx);
        }
    }
}

// ---- public: sync ---------------------------------------------------------

pub mod sync {
    //! Model-managed synchronization primitives (mirrors `std::sync`).

    use super::*;
    use std::cell::UnsafeCell;
    use std::sync::LockResult;

    pub use std::sync::Arc;

    /// Model-managed mutex: every lock/unlock is a schedule point and
    /// mutual exclusion is enforced by the scheduler (never by the OS,
    /// so a blocked acquirer never wedges the explorer). Poisoning is
    /// not modeled: `lock` always returns `Ok` (panics inside the
    /// model abort the whole execution anyway).
    pub struct Mutex<T> {
        id: std::sync::OnceLock<usize>,
        cell: UnsafeCell<T>,
    }

    // SAFETY: the scheduler runs exactly one loom thread at a time and
    // grants `cell` access only to the thread holding the model-level
    // lock, so `&Mutex<T>` may cross threads whenever `T: Send` (the
    // same bound std::sync::Mutex uses).
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: as above — exclusive access is scheduler-enforced, so
    // shared references to the mutex are safe to send across threads.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex { id: std::sync::OnceLock::new(), cell: UnsafeCell::new(value) }
        }

        /// The model-level id, registered with the active execution on
        /// first contact (mutexes are created inside the model closure,
        /// so ids are deterministic across replays).
        fn id(&self, ctx: &Ctx) -> usize {
            *self.id.get_or_init(|| {
                let mut st = ctx.exec.lock();
                st.mutexes.push(MutexState::default());
                st.mutexes.len() - 1
            })
        }

        /// Acquire; a schedule point. Blocks (in model time) until the
        /// scheduler can grant the mutex.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let ctx = require_ctx("sync::Mutex::lock");
            let id = self.id(&ctx);
            {
                let mut st = ctx.exec.lock();
                st.threads[ctx.tid] = Run::BlockedMutex(id);
                schedule(&ctx, st);
            }
            Ok(MutexGuard { mutex: self, ctx })
        }

        pub fn into_inner(self) -> LockResult<T> {
            Ok(self.cell.into_inner())
        }
    }

    /// RAII guard; dropping it releases the model-level lock (a
    /// schedule point, unless the thread is unwinding).
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        ctx: Ctx,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the scheduler granted this thread the mutex at
            // guard construction and revokes it only in drop, and only
            // one loom thread executes at any instant — so no other
            // reference to the cell can exist while the guard lives.
            unsafe { &*self.mutex.cell.get() }
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in deref — scheduler-enforced exclusivity for
            // the guard's lifetime.
            unsafe { &mut *self.mutex.cell.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let id = match self.mutex.id.get() {
                Some(&id) => id,
                None => return,
            };
            let mut st = self.ctx.exec.lock();
            if st.aborting {
                return;
            }
            st.mutexes[id].locked = false;
            // a release during a user panic must not re-enter the
            // scheduler: the unwind may cross catch_unwind and continue
            // the model, and the next sync op re-schedules anyway
            if !std::thread::panicking() {
                schedule(&self.ctx, st);
            }
        }
    }

    /// Model-managed condvar. `notify_one` wakes the longest-waiting
    /// thread (FIFO — a modeling choice, not an std guarantee);
    /// spurious wakeups are not modeled.
    #[derive(Default)]
    pub struct Condvar {
        id: std::sync::OnceLock<usize>,
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar::default()
        }

        fn id(&self, ctx: &Ctx) -> usize {
            *self.id.get_or_init(|| {
                let mut st = ctx.exec.lock();
                st.condvars.push(CvState::default());
                st.condvars.len() - 1
            })
        }

        /// Atomically release the guard's mutex and park until
        /// notified; reacquires before returning. A lost wakeup (no
        /// notify ever arrives) is reported as a deadlock by the model.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let ctx = require_ctx("sync::Condvar::wait");
            let cv = self.id(&ctx);
            let mutex = guard.mutex;
            let mid = mutex.id(&ctx);
            // release the mutex without running the guard's drop (drop
            // would schedule with this thread still Runnable)
            std::mem::forget(guard);
            {
                let mut st = ctx.exec.lock();
                st.mutexes[mid].locked = false;
                st.threads[ctx.tid] = Run::WaitingCv { cv, mutex: mid, notified: false };
                st.condvars[cv].waiters.push_back(ctx.tid);
                schedule(&ctx, st);
            }
            Ok(MutexGuard { mutex, ctx })
        }

        /// Wake the longest-waiting thread, if any (a no-op otherwise —
        /// which is exactly the lost-wakeup the checker detects when a
        /// wait races past its notify).
        pub fn notify_one(&self) {
            let ctx = require_ctx("sync::Condvar::notify_one");
            let cv = self.id(&ctx);
            let mut st = ctx.exec.lock();
            if let Some(t) = st.condvars[cv].waiters.pop_front() {
                if let Run::WaitingCv { notified, .. } = &mut st.threads[t] {
                    *notified = true;
                }
            }
            schedule(&ctx, st);
        }

        /// Wake every waiting thread.
        pub fn notify_all(&self) {
            let ctx = require_ctx("sync::Condvar::notify_all");
            let cv = self.id(&ctx);
            let mut st = ctx.exec.lock();
            while let Some(t) = st.condvars[cv].waiters.pop_front() {
                if let Run::WaitingCv { notified, .. } = &mut st.threads[t] {
                    *notified = true;
                }
            }
            schedule(&ctx, st);
        }
    }

    pub mod atomic {
        //! Atomics whose every access is a schedule point, explored
        //! with sequentially consistent semantics (`Ordering` is
        //! accepted for API parity and ignored — this shim does not
        //! model weak memory). Outside a model they behave like the
        //! std atomics they wrap.

        use super::super::{current, yield_point};
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    pub const fn new(v: $prim) -> Self {
                        Self(<$std>::new(v))
                    }

                    fn point(&self) {
                        if let Some(ctx) = current() {
                            yield_point(&ctx);
                        }
                    }

                    pub fn load(&self, _o: Ordering) -> $prim {
                        self.point();
                        self.0.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $prim, _o: Ordering) {
                        self.point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $prim, _o: Ordering) -> $prim {
                        self.point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        cur: $prim,
                        new: $prim,
                        _s: Ordering,
                        _f: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.point();
                        self.0.compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

        macro_rules! fetch_ops {
            ($name:ident, $prim:ty) => {
                impl $name {
                    pub fn fetch_add(&self, v: $prim, _o: Ordering) -> $prim {
                        self.point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn fetch_sub(&self, v: $prim, _o: Ordering) -> $prim {
                        self.point();
                        self.0.fetch_sub(v, Ordering::SeqCst)
                    }
                }
            };
        }

        fetch_ops!(AtomicUsize, usize);
        fetch_ops!(AtomicU64, u64);
    }
}

// ---- tests ----------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn single_threaded_model_runs_once() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let report = model(|| {
            hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(report.iterations, 1, "no schedule branches, one execution");
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn two_racing_increments_explore_both_orders() {
        // two threads each read-modify-write via lock: the interesting
        // orders are who locks first — at least 2 interleavings
        let report = model(|| {
            let m = Arc::new(Mutex::new(0usize));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                *g += 1;
            });
            {
                let mut g = m.lock().unwrap();
                *g += 10;
            }
            h.join().unwrap();
            let v = *m.lock().unwrap();
            assert_eq!(v, 11, "both increments must land regardless of order");
        });
        assert!(report.iterations > 1, "expected multiple interleavings, got {report:?}");
    }

    #[test]
    fn mutex_enforces_mutual_exclusion_across_schedules() {
        model(|| {
            let m = Arc::new(Mutex::new((0usize, 0usize)));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                g.0 += 1;
                // if another thread ran inside the critical section,
                // the two fields would disagree at the end
                thread::yield_now();
                g.1 += 1;
            });
            {
                let mut g = m.lock().unwrap();
                g.0 += 1;
                thread::yield_now();
                g.1 += 1;
            }
            h.join().unwrap();
            let g = m.lock().unwrap();
            assert_eq!(g.0, g.1, "critical sections interleaved");
        });
    }

    #[test]
    fn condvar_handshake_completes_in_every_interleaving() {
        let report = model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock().unwrap();
                *g = true;
                cv.notify_one();
                drop(g);
            });
            let (m, cv) = &*pair;
            let mut g = m.lock().unwrap();
            // predicate loop: the protocol every correct waiter uses
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        });
        assert!(report.iterations > 1, "wait-first and notify-first orders both explored");
    }

    #[test]
    fn lost_wakeup_is_detected_as_deadlock() {
        // the classic bug: flag checked OUTSIDE the mutex the condvar
        // pairs with — the notify can slip between check and wait
        let r = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let flag = Arc::new(AtomicUsize::new(0));
                let pair = Arc::new((Mutex::new(()), Condvar::new()));
                let (f2, p2) = (Arc::clone(&flag), Arc::clone(&pair));
                let h = thread::spawn(move || {
                    f2.store(1, Ordering::SeqCst);
                    p2.1.notify_one();
                });
                if flag.load(Ordering::SeqCst) == 0 {
                    let g = pair.0.lock().unwrap();
                    let _g = pair.1.wait(g).unwrap(); // no predicate loop
                }
                h.join().unwrap();
            });
        }));
        let msg = match r {
            Err(p) => *p.downcast::<String>().expect("panic message"),
            Ok(report) => panic!("buggy model was not caught ({report:?})"),
        };
        assert!(msg.contains("deadlock"), "failure must name the deadlock: {msg}");
        assert!(msg.contains("schedule"), "failure must carry the schedule trace: {msg}");
    }

    #[test]
    fn self_deadlock_is_detected() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let m = Mutex::new(());
                let _a = m.lock().unwrap();
                let _b = m.lock().unwrap(); // non-reentrant: blocks forever
            });
        }));
        assert!(r.is_err(), "double-lock must be reported");
    }

    #[test]
    fn assertion_failures_surface_with_a_schedule() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            model(|| {
                let c = Arc::new(AtomicUsize::new(0));
                let c2 = Arc::clone(&c);
                let h = thread::spawn(move || c2.store(1, Ordering::SeqCst));
                // wrong: asserts the child already ran — fails in the
                // interleaving where the parent reads first
                assert_eq!(c.load(Ordering::SeqCst), 1);
                h.join().unwrap();
            });
        }));
        assert!(r.is_err(), "the racy assertion must be caught");
    }

    #[test]
    fn preemption_bound_zero_still_runs_forced_switches() {
        // with bound 0 only forced switches happen; the handshake still
        // completes because blocking hands the token over for free
        let report = model::Builder { preemption_bound: 0, max_iterations: 1000 }.check(|| {
            let m = Arc::new(Mutex::new(0usize));
            let m2 = Arc::clone(&m);
            let h = thread::spawn(move || *m2.lock().unwrap() += 1);
            *m.lock().unwrap() += 1;
            h.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
        assert_eq!(report.iterations, 1, "bound 0 admits exactly the default schedule");
    }

    #[test]
    fn atomics_fall_back_to_std_outside_models() {
        let a = AtomicUsize::new(3);
        a.fetch_add(2, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 5);
    }
}
