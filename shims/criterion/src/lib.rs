//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides
//! the API subset the workspace's benches use: [`Criterion`],
//! benchmark groups with `sample_size`/`measurement_time`/`warm_up_time`,
//! [`BenchmarkId`], `bench_function`/`bench_with_input`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Semantics: each benchmark runs its closure repeatedly until the
//! group's measurement time elapses, then reports the mean wall-clock
//! time per iteration. Benchmarks only execute when the binary receives
//! a `--bench` argument (which `cargo bench` passes); under any other
//! invocation (e.g. a plain build-and-run smoke test) the harness prints
//! a notice and exits successfully, keeping test runs fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { enabled: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// True when benchmarks should actually execute (`--bench` given).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            enabled: self.enabled,
            measurement: Duration::from_secs(1),
            _criterion: self,
        }
    }
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as criterion prints it.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    enabled: bool,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time only.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the shim folds warm-up into the
    /// first (discarded) iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, |b| f(b));
        self
    }

    /// Run one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Close the group (no-op; reports are printed per benchmark).
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.enabled {
            return;
        }
        let mut b = Bencher { measurement: self.measurement, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        let per_iter = if b.iters > 0 { b.elapsed / b.iters as u32 } else { Duration::ZERO };
        println!("{}/{:<40} time: {:>12.3?}   ({} iterations)", self.name, id, per_iter, b.iters);
    }
}

/// Passed to each benchmark closure; `iter` performs the timed loop.
pub struct Bencher {
    measurement: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly until the measurement time elapses, recording
    /// total time and iteration count. One untimed warm-up call is made
    /// first.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Collect benchmark functions into a group runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            if !c.enabled() {
                println!("criterion shim: benchmarks skipped (run via `cargo bench`)");
            }
            $($group(&mut c);)+
        }
    };
}
