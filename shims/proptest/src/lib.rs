//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this shim
//! implements the subset of the proptest API the workspace uses:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(...)]`), expanding each `fn name(x in strategy)`
//!   into a plain `#[test]` that samples the strategies for
//!   `config.cases` deterministic cases;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer and float ranges, `any::<T>()`,
//!   `prop::array::uniform32`, and `prop::collection::vec`.
//!
//! Sampling is deterministic: the RNG is seeded from the test name, so
//! failures reproduce exactly. Unlike real proptest there is no
//! shrinking — the failing inputs are printed instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of values for one proptest argument.
    pub trait Strategy {
        /// The value type produced.
        type Value: std::fmt::Debug;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            let u01 = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            self.start + u01 * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let u01 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + u01 * (self.end - self.start)
        }
    }

    /// Types with a full-range default strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Full-range strategy for a primitive type, like `proptest::arbitrary::any`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[T; 32]` sampling each element from `S`.
    pub struct Uniform32<S>(S);

    /// 32-element array strategy, like `proptest::array::uniform32`.
    pub fn uniform32<S: Strategy>(element: S) -> Uniform32<S> {
        Uniform32(element)
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vec strategy, like `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

pub mod test_runner {
    /// Per-test configuration (only `cases` is meaningful in the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion with an explanatory message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 RNG seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from an identifying string.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcafe_f00d_d15e_a5e5u64;
            for b in name.bytes() {
                seed = seed.rotate_left(7) ^ b as u64;
                seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Property-test declaration macro; see the crate docs for the supported
/// grammar subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!("proptest case {case} failed: {e}\n  inputs: {inputs}");
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}
