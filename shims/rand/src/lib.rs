//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! and float ranges. The generator is SplitMix64 — deterministic and
//! high-enough quality for synthetic workload generation, but *not* the
//! ChaCha generator real `rand` uses, so sequences differ from upstream.

/// Types samplable from a `Range<T>` (the subset of rand's
/// `SampleUniform` this workspace needs). The type parameter mirrors
/// rand's generic shape so literal ranges infer their element type from
/// the call site's expected result type.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (next() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> f32 {
        let u01 = (next() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + u01 * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> f64 {
        let u01 = (next() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u01 * (self.end - self.start)
    }
}

/// Random-value methods over a generator.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }
}

/// Constructors from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic standard generator (SplitMix64 in this shim).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x1656_6791_6e17_3db5 }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(-1.5f32..1.5);
            assert_eq!(x, b.gen_range(-1.5f32..1.5));
            assert!((-1.5..1.5).contains(&x));
            let n = a.gen_range(0usize..10);
            assert_eq!(n, b.gen_range(0usize..10));
            assert!(n < 10);
        }
    }
}
