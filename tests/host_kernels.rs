//! Property tests for the host SIMD micro-kernel tiers.
//!
//! The dispatch contract is **bit-identity**: every tier
//! ([`HostKernel::available`] — scalar always, plus AVX2, AVX-512
//! and/or NEON when the CPU has them) must produce byte-for-byte the
//! same results as the scalar reference on every path — blocked tiles
//! (4-wide and widened), skinny-m and skinny-n fast paths (panel and
//! dense B), both integer dtypes, the packers, and the f32 subsystem.
//! Integer identity is structural (exact products, wrapping i32
//! accumulation); f32 identity holds because every tier realizes the
//! same per-element fused-multiply-add chain over ascending k.
//!
//! These tests run whatever tiers the build machine supports, so the CI
//! scalar-fallback job (`CAMP_FORCE_SCALAR=1`) and the regular job
//! together cover dispatch both ways.

use camp::core::backend::CampBackend;
use camp::core::{CampEngine, DType, GemmRequest, Operand};
use camp::gemm::host::{HostGemmF32, HostKernel, HostTier};
use camp::gemm::{gemm_f32_fma_ref, gemm_i32_ref};
use proptest::prelude::*;
use std::sync::Arc;

fn gen_i8(len: usize, s: u32, lo: i32, hi: i32) -> Vec<i8> {
    let span = (hi - lo + 1) as u32;
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s ^ 0x9e37) % span) as i32 + lo)
        .map(|v| v as i8)
        .collect()
}

fn gen_f32(len: usize, s: u32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s) % 2001) as f32 / 1000.0 - 1.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every available tier computes the same bytes as the scalar tier
    /// through the full engine (blocked and skinny paths both land here:
    /// m and n each range across the small-path threshold).
    #[test]
    fn every_tier_matches_scalar_through_the_engine(
        m in 1usize..20, n in 1usize..20, k in 1usize..80, seed in any::<u32>())
    {
        for dtype in [DType::I8, DType::I4] {
            let (lo, hi) = if dtype == DType::I4 { (-8, 7) } else { (-128, 127) };
            let a = gen_i8(m * k, seed | 1, lo, hi);
            let b = gen_i8(k * n, seed.rotate_left(7) | 1, lo, hi);
            let req = GemmRequest::builder()
                .m(m).n(n).k(k)
                .activation(a.clone())
                .weights(Operand::from_dense(b.clone()))
                .dtype(dtype)
                .build().expect("coherent");
            let want = gemm_i32_ref(m, n, k, &a, &b);
            for hk in HostKernel::available() {
                let mut eng = CampEngine::with_threads_and_kernel(1, hk);
                let got = eng.execute(&req).unwrap();
                prop_assert_eq!(&got.output.c, &want,
                    "tier {} wrong at {}x{}x{} {:?}", hk.tier().name(), m, n, k, dtype);
            }
        }
    }

    /// Skinny shapes specifically: the small-m dense path, the small-m
    /// panel path (registered weights) and the small-n path must agree
    /// across tiers, including under row-partitioned parallelism.
    #[test]
    fn skinny_fast_paths_are_tier_invariant(
        small in 1usize..9, big in 9usize..80, k in 1usize..100,
        threads in 1usize..5, seed in any::<u32>())
    {
        for (m, n) in [(small, big), (big, small), (small, small)] {
            let a = gen_i8(m * k, seed | 1, -128, 127);
            let b = gen_i8(k * n, seed.rotate_left(9) | 1, -128, 127);
            let want = gemm_i32_ref(m, n, k, &a, &b);
            for hk in HostKernel::available() {
                let mut eng = CampEngine::with_threads_and_kernel(threads, hk);
                // dense B: small-m problems take the raw-B row sweep
                let dense = GemmRequest::dense(m, n, k, a.clone(), b.clone()).unwrap();
                let got = eng.execute(&dense).unwrap();
                prop_assert_eq!(&got.output.c, &want,
                    "dense tier {} {}x{}x{}", hk.tier().name(), m, n, k);
                // registered B: the same problem walks the packed panel
                let h = CampBackend::register_weights(&mut eng, n, k, &b, DType::I8);
                let req = GemmRequest::with_weights(m, a.clone(), h).unwrap();
                let got = eng.execute(&req).unwrap();
                prop_assert_eq!(&got.output.c, &want,
                    "handle tier {} {}x{}x{}", hk.tier().name(), m, n, k);
                let stats = got.stats.as_host().expect("host ran");
                prop_assert_eq!(stats.packed_b_bytes, 0, "handles never re-pack B");
            }
        }
    }

    /// Batches with shared operands are tier-invariant too (the batch
    /// path routes through the same WorkItem machinery but dedups B).
    #[test]
    fn batches_are_tier_invariant(
        m1 in 1usize..12, m2 in 1usize..12, n in 1usize..24, k in 1usize..60,
        seed in any::<u32>())
    {
        let a1 = gen_i8(m1 * k, seed | 1, -8, 7);
        let a2 = gen_i8(m2 * k, seed.rotate_left(5) | 1, -8, 7);
        let b: Arc<[i8]> = gen_i8(k * n, seed.rotate_left(11) | 1, -8, 7).into();
        let reqs: Vec<GemmRequest> = [(m1, &a1), (m2, &a2)]
            .into_iter()
            .map(|(m, a)| GemmRequest::builder()
                .m(m).n(n).k(k)
                .activation(a.clone())
                .weights(Operand::Dense(Arc::clone(&b)))
                .dtype(DType::I4)
                .build().expect("coherent"))
            .collect();
        let mut scalar = CampEngine::with_threads_and_kernel(1, HostKernel::scalar());
        let want = scalar.execute_batch(&reqs).unwrap();
        for hk in HostKernel::available() {
            let mut eng = CampEngine::with_threads_and_kernel(1, hk);
            let got = eng.execute_batch(&reqs).unwrap();
            prop_assert_eq!(&got.outputs, &want.outputs, "tier {}", hk.tier().name());
            // stats are a property of the problem, not the tier
            prop_assert_eq!(&got.stats, &want.stats, "tier {}", hk.tier().name());
        }
    }

    /// The widened integer tile is bit-identical to `int_nr/4`
    /// independent 4x4 tile calls on every tier (the engine relies on
    /// this to keep results routing-invariant when it groups panels).
    #[test]
    fn wide_tile_matches_narrow_tiles_on_every_tier(
        kc8 in 1usize..12, seed in any::<u32>())
    {
        let kcb = kc8 * 8;
        for hk in HostKernel::available() {
            let nw = hk.int_nr() / 4;
            let pa = gen_i8(kcb * 4, seed | 1, -128, 127);
            let pb = gen_i8(kcb * 4 * nw, seed.rotate_left(13) | 1, -128, 127);
            let mut wide = vec![[0i32; 4]; nw * 4];
            hk.tile_i8_wide(&pa, &pb, &mut wide);
            let mut narrow = vec![[0i32; 4]; nw * 4];
            for q in 0..nw {
                let sub: &mut [[i32; 4]; 4] =
                    (&mut narrow[q * 4..(q + 1) * 4]).try_into().unwrap();
                hk.tile_i8(&pa, &pb[q * kcb * 4..(q + 1) * kcb * 4], sub);
            }
            prop_assert_eq!(&wide, &narrow,
                "tier {} wide tile diverges at kcb={}", hk.tier().name(), kcb);
        }
    }

    /// The dense skinny-n kernel agrees with the scalar reference on
    /// raw row-major operands for every n at or below the threshold.
    #[test]
    fn small_n_dense_matches_scalar_on_every_tier(
        m in 1usize..80, n in 1usize..9, k in 0usize..100, seed in any::<u32>())
    {
        let a = gen_i8(m * k, seed | 1, -128, 127);
        let b = gen_i8(k * n, seed.rotate_left(7) | 1, -128, 127);
        let mut want = vec![0i32; m * n];
        HostKernel::scalar().small_n_dense(m, n, k, &a, &b, &mut want);
        for hk in HostKernel::available() {
            let mut got = vec![0i32; m * n];
            hk.small_n_dense(m, n, k, &a, &b, &mut got);
            prop_assert_eq!(&got, &want,
                "tier {} dense skinny-n diverges at {}x{}x{}", hk.tier().name(), m, n, k);
        }
    }

    /// The vectorized packers produce byte-identical images to the
    /// scalar reference over ragged shapes, interior and edge blocks,
    /// and depth remainders — packed panels stay tier-portable.
    #[test]
    fn packers_are_byte_identical_across_tiers(
        m in 1usize..70, n in 1usize..70, k in 1usize..70,
        kcb in 1usize..48, off8 in 0usize..8, pc in 0usize..80, seed in any::<u32>())
    {
        let jc = ((off8 * 4) % n) & !3;
        let ncb = (n - jc).min(32).next_multiple_of(4).max(4);
        let ic = ((off8 * 4) % m) & !3;
        let mcb = (m - ic).min(32).next_multiple_of(4).max(4);
        let a = gen_i8(m * k, seed | 1, -128, 127);
        let b = gen_i8(k * n, seed.rotate_left(11) | 1, -128, 127);
        let mut want_b = vec![0x55i8; ncb * kcb];
        camp::gemm::host::scalar::pack_b_block(&mut want_b, &b, n, k, jc, pc, kcb);
        let mut want_a = vec![0x55i8; mcb * kcb];
        camp::gemm::host::scalar::pack_a_block(&mut want_a, &a, m, k, ic, pc, kcb);
        for hk in HostKernel::available() {
            let mut got = vec![0x55i8; ncb * kcb];
            hk.pack_b_block(&mut got, &b, n, k, jc, pc, kcb);
            prop_assert_eq!(&got, &want_b, "tier {} pack_b {}x{} jc={} pc={} kcb={}",
                hk.tier().name(), n, k, jc, pc, kcb);
            let mut got = vec![0x55i8; mcb * kcb];
            hk.pack_a_block(&mut got, &a, m, k, ic, pc, kcb);
            prop_assert_eq!(&got, &want_a, "tier {} pack_a {}x{} ic={} pc={} kcb={}",
                hk.tier().name(), m, k, ic, pc, kcb);
        }
    }

    /// The vectorized nibble packer matches the scalar reference for
    /// every length, including odd tails.
    #[test]
    fn pack_nibbles_is_byte_identical_across_tiers(
        len in 0usize..600, seed in any::<u32>())
    {
        let vals = gen_i8(len, seed | 1, -8, 7);
        let want = camp::gemm::host::scalar::pack_nibbles(&vals);
        for hk in HostKernel::available() {
            prop_assert_eq!(&hk.pack_nibbles(&vals), &want,
                "tier {} nibble pack diverges at len {}", hk.tier().name(), len);
        }
    }

    /// f32: every tier reproduces the reference fused-multiply-add
    /// chain bit-for-bit, across odd shapes and the skinny-m fast path.
    #[test]
    fn f32_tiers_match_the_fma_reference_bitwise(
        m in 1usize..24, n in 1usize..24, k in 1usize..80, seed in any::<u32>())
    {
        let a = gen_f32(m * k, seed | 1);
        let b = gen_f32(k * n, seed.rotate_left(7) | 1);
        let want = gemm_f32_fma_ref(m, n, k, &a, &b);
        for hk in HostKernel::available() {
            let mut ctx = HostGemmF32::with_kernel(hk);
            let got = ctx.gemm(m, n, k, &a, &b);
            let same = got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "tier {} diverges at {}x{}x{}", hk.tier().name(), m, n, k);
        }
    }
}

#[test]
fn available_always_includes_scalar_and_the_detected_tier() {
    let tiers: Vec<HostTier> = HostKernel::available().iter().map(|h| h.tier()).collect();
    assert!(tiers.contains(&HostTier::Scalar));
    assert!(tiers.contains(&HostKernel::detect().tier()));
}

#[test]
fn engine_reports_its_dispatched_tier() {
    let eng = CampEngine::new();
    let info = eng.kernel_info();
    assert_eq!(info.tier, HostKernel::detect().tier().name());
    assert_eq!(info.int_tile_i8.0, 4);
    assert_eq!(info.int_tile_i8.1 % 4, 0);
    assert_eq!(info.int_tile_i4, info.int_tile_i8);
    for hk in HostKernel::available() {
        let pinned = CampEngine::with_threads_and_kernel(2, hk);
        assert_eq!(CampBackend::kernel_info(&pinned).tier, hk.tier().name());
    }
}
