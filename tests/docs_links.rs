//! Markdown link checker for the repo's prose docs (`README.md`,
//! `ROADMAP.md` and everything under `docs/`): every relative link must
//! point at a file that exists, and every `#anchor` into a Markdown
//! file must match one of its headings (GitHub slug rules). CI runs
//! this as part of the normal test suite, so a doc rename that strands
//! a link fails the build instead of rotting silently.
//!
//! `rustdoc` intra-doc links are covered separately by the CI
//! `cargo doc -D warnings` step; this test owns the `.md` layer.

use std::collections::BTreeSet;
use std::path::{Component, Path, PathBuf};

/// The prose files under link check: the repo front door plus the
/// architecture docs.
fn files_to_check(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("README.md"), root.join("ROADMAP.md")];
    let docs = root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "md") {
                files.push(p);
            }
        }
    }
    files
}

/// Extract `[text](target)` link targets, skipping fenced code blocks
/// and inline code spans (a `](` inside backticks is not a link).
fn markdown_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // strip inline code spans before scanning for links
        let mut clean = String::new();
        let mut in_code = false;
        for ch in line.chars() {
            if ch == '`' {
                in_code = !in_code;
            } else if !in_code {
                clean.push(ch);
            }
        }
        let bytes = clean.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = clean[start..].find(')') {
                    links.push(clean[start..start + rel_end].to_string());
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style anchor slugs of every heading in a Markdown file.
fn heading_anchors(text: &str) -> BTreeSet<String> {
    let mut anchors = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let mut slug = String::new();
        for ch in title.chars() {
            // GitHub keeps alphanumerics AND underscores (snake_case
            // API names slug verbatim), maps spaces/hyphens to '-',
            // and drops all other punctuation
            if ch.is_alphanumeric() || ch == '_' {
                slug.extend(ch.to_lowercase());
            } else if ch == ' ' || ch == '-' {
                slug.push('-');
            }
        }
        anchors.insert(slug);
    }
    anchors
}

/// Resolve `relative` against `base_dir` without touching the
/// filesystem (so `../` links are normalized before the existence
/// check, and escaping the repo is detectable).
fn resolve(base_dir: &Path, relative: &str) -> PathBuf {
    let mut out = base_dir.to_path_buf();
    for comp in Path::new(relative).components() {
        match comp {
            Component::ParentDir => {
                out.pop();
            }
            Component::CurDir => {}
            other => out.push(other),
        }
    }
    out
}

#[test]
fn relative_markdown_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut errors = Vec::new();
    let files = files_to_check(&root);
    assert!(files.len() >= 2, "link checker found no docs to check");
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let own_anchors = heading_anchors(&text);
        let dir = file.parent().expect("doc files live in a directory");
        for link in markdown_links(&text) {
            // external / protocol links are out of scope
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (link.as_str(), None),
            };
            // same-file anchor
            if path_part.is_empty() {
                let a = anchor.expect("split_once('#') produced an anchor");
                if !own_anchors.contains(&a) {
                    errors.push(format!(
                        "{}: broken same-file anchor '#{a}' (have: {own_anchors:?})",
                        file.display()
                    ));
                }
                continue;
            }
            let target = resolve(dir, path_part);
            if !target.exists() {
                errors.push(format!(
                    "{}: broken link '{link}' ({} does not exist)",
                    file.display(),
                    target.display()
                ));
                continue;
            }
            if let Some(a) = anchor {
                if target.extension().is_some_and(|x| x == "md") {
                    let ttext = std::fs::read_to_string(&target)
                        .unwrap_or_else(|e| panic!("cannot read {}: {e}", target.display()));
                    if !heading_anchors(&ttext).contains(&a) {
                        errors.push(format!(
                            "{}: link '{link}' points at a missing heading '#{a}' in {}",
                            file.display(),
                            target.display()
                        ));
                    }
                }
            }
        }
    }
    assert!(errors.is_empty(), "broken doc links:\n{}", errors.join("\n"));
}

#[test]
fn the_architecture_docs_exist_and_are_linked_from_the_readme() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for doc in ["docs/ARCHITECTURE.md", "docs/SIMULATOR.md", "docs/HOST_KERNELS.md"] {
        assert!(root.join(doc).exists(), "{doc} is missing");
    }
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README exists");
    assert!(readme.contains("docs/ARCHITECTURE.md"), "README must link the architecture guide");
    assert!(readme.contains("docs/SIMULATOR.md"), "README must link the simulator contract");
}
