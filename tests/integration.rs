//! Cross-crate integration tests: the full stack from workload models
//! through quantization, kernels, simulation and energy — engine paths
//! exercised through the unified `CampBackend` request surface.

use camp::core::backend::CampBackend;
use camp::core::{gemm_i32_ref, CampEngine, DType, GemmRequest};
use camp::energy::{AreaModel, EnergyModel, TechNode};
use camp::gemm::{simulate_gemm, GemmOptions, Method};
use camp::models::conv::{im2col, weights_to_b, Conv2d, Tensor3};
use camp::models::{cnn, Benchmark, LlmModel};
use camp::pipeline::CoreConfig;
use camp::quant::SymmetricQuantizer;

fn small_opts() -> GemmOptions {
    GemmOptions { mac_budget: 3_000_000, ..GemmOptions::default() }
}

/// One dense request through the host engine.
fn host_gemm(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], dtype: DType) -> Vec<i32> {
    let req = GemmRequest::builder()
        .m(m)
        .n(n)
        .k(k)
        .activation(a.to_vec())
        .weights(camp::core::Operand::from_dense(b.to_vec()))
        .dtype(dtype)
        .build()
        .expect("well-formed request");
    CampEngine::new().execute(&req).expect("host execution").output.c
}

#[test]
fn quantize_then_camp_gemm_tracks_float() {
    let (m, n, k) = (16, 16, 64);
    let a_f: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.11).sin()).collect();
    let b_f: Vec<f32> = (0..k * n).map(|i| ((i as f32) * 0.07).cos()).collect();
    let qa = SymmetricQuantizer::fit(&a_f, 8);
    let qb = SymmetricQuantizer::fit(&b_f, 8);
    let c = host_gemm(m, n, k, &qa.quantize_all(&a_f), &qb.quantize_all(&b_f), DType::I8);
    // spot-check one element against the float product
    let mut want = 0.0f32;
    for l in 0..k {
        want += a_f[5 * k + l] * b_f[l * n + 3];
    }
    let got = c[5 * n + 3] as f32 * qa.scale * qb.scale;
    assert!((want - got).abs() < 0.05, "{want} vs {got}");
}

#[test]
fn conv_layer_through_camp_engine() {
    let conv = Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 };
    let mut input = Tensor3::zeros(4, 6, 6);
    for (i, v) in input.data.iter_mut().enumerate() {
        *v = ((i * 3) % 13) as i8 - 6;
    }
    let weights: Vec<i8> = (0..8 * 4 * 9).map(|i| ((i * 7) % 15) as i8 - 7).collect();
    let a = im2col(&conv, &input);
    let b = weights_to_b(&conv, &weights);
    let s = conv.gemm_shape(6, 6);
    let via_camp = host_gemm(s.m, s.n, s.k, &a, &b, DType::I8);
    assert_eq!(via_camp, gemm_i32_ref(s.m, s.n, s.k, &a, &b));
}

#[test]
fn camp4_engine_matches_reference_on_4bit_data() {
    let (m, n, k) = (12, 20, 64);
    let a: Vec<i8> = (0..m * k).map(|i| (i % 16) as i8 - 8).collect();
    let b: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
    assert_eq!(host_gemm(m, n, k, &a, &b, DType::I4), gemm_i32_ref(m, n, k, &a, &b));
}

#[test]
fn simulated_camp_beats_baseline_on_table3_layer() {
    // A small-but-real Table 3 layer (MobileNet #5 clamped).
    let shape = cnn::layers(Benchmark::MobileNet)[4];
    let opts = small_opts();
    let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, shape.m, shape.n, shape.k, &opts);
    let base =
        simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, shape.m, shape.n, shape.k, &opts);
    assert!(camp.correct && base.correct);
    assert!(camp.stats.cycles < base.stats.cycles);
    assert!(camp.stats.insts < base.stats.insts);
}

#[test]
fn llm_shape_simulates_and_wins() {
    let shape = LlmModel::BertBase.config().sa_shape();
    let opts = small_opts();
    let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp4, shape.m, shape.n, shape.k, &opts);
    let base =
        simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, shape.m, shape.n, shape.k, &opts);
    assert!(camp.correct);
    assert!(camp.stats.cycles * 2 < base.stats.cycles, "CAMP-4bit should be >2x here");
}

#[test]
fn attention_batch_cross_validates_for_all_llms() {
    // the per-head Fig. 14 attention inventory for every paper model,
    // built as typed requests, run as one batch and checked
    // element-for-element against the golden reference and the
    // per-request path; scaled to test runtime (one layer, short
    // sequence) with the real hidden size and head count so the
    // projection/score/context structure is intact
    for (i, model) in LlmModel::all().into_iter().enumerate() {
        let mut cfg = model.config();
        cfg.layers = 1;
        cfg.seq_len = 8;
        let workload = cfg.attention_workload(0xFEED + i as u64);
        let slices = workload.problems();
        let requests = workload.gemm_requests(DType::I8);
        assert_eq!(requests.len(), 4 + 2 * cfg.heads, "{}", model.name());
        let mut eng = CampEngine::with_threads(3);
        let batch = eng.execute_batch(&requests).expect("well-formed batch");
        let mut per_call = CampEngine::new();
        for ((out, req), p) in batch.outputs.iter().zip(&requests).zip(&slices) {
            let shape = format!("{} {}x{}x{}", model.name(), p.m, p.n, p.k);
            assert_eq!(out.c, gemm_i32_ref(p.m, p.n, p.k, p.a, p.b), "{shape} vs reference");
            let solo = per_call.execute(req).expect("well-formed request");
            assert_eq!(out, &solo.output, "{shape} vs per-request");
        }
    }
}

#[test]
fn attention_batch_runs_under_the_i4_kernel() {
    // workload data is 4-bit quantized, so the same batch must be exact
    // under camp.s4 as well
    let mut cfg = LlmModel::BertBase.config();
    cfg.layers = 1;
    cfg.seq_len = 8;
    let workload = cfg.attention_workload(0xBEEF);
    let slices = workload.problems();
    let requests = workload.gemm_requests(DType::I4);
    let batch = CampEngine::with_threads(2).execute_batch(&requests).expect("well-formed batch");
    for (out, p) in batch.outputs.iter().zip(&slices) {
        assert_eq!(out.c, gemm_i32_ref(p.m, p.n, p.k, p.a, p.b), "{}x{}x{}", p.m, p.n, p.k);
    }
}

#[test]
fn registered_attention_weights_skip_all_b_packing() {
    // the serving acceptance criterion: with every B operand
    // pre-registered, batch calls move zero B-pack bytes — on the
    // first call and forever after — while staying bit-identical to
    // the golden reference
    let mut cfg = LlmModel::BertBase.config();
    cfg.layers = 1;
    cfg.seq_len = 8;
    let workload = cfg.attention_workload(0xCAFE);
    let mut eng = CampEngine::with_threads(3);
    let handles = workload.register(&mut eng, DType::I8);
    let by_handle = workload.gemm_requests_with_handles(&handles);
    let slices = workload.problems();

    let first = eng.execute_batch(&by_handle).expect("well-formed batch");
    let s1 = first.stats.as_host().expect("host stats");
    assert_eq!(s1.packed_b_bytes, 0, "registered weights must never pack B");
    for (out, p) in first.outputs.iter().zip(&slices) {
        assert_eq!(out.c, gemm_i32_ref(p.m, p.n, p.k, p.a, p.b), "{}x{}x{}", p.m, p.n, p.k);
    }
    let warm_allocs = eng.pack_allocations();
    for _ in 0..3 {
        let again = eng.execute_batch(&by_handle).expect("well-formed batch");
        assert_eq!(again.outputs, first.outputs);
        let s = again.stats.as_host().expect("host stats");
        assert_eq!(s.packed_b_bytes, 0, "steady state must not pack B");
    }
    assert_eq!(eng.pack_allocations(), warm_allocs, "steady state must not allocate");
}

#[test]
fn serving_session_streams_attention_batches_bit_identically() {
    // register once, stream several batches through submit/poll with
    // all of them in flight, and compare against the golden reference
    let mut cfg = LlmModel::BertBase.config();
    cfg.layers = 1;
    cfg.seq_len = 8;
    let workload = cfg.attention_workload(0xD15C0);
    let slices = workload.problems();
    let mut eng = CampEngine::with_threads(2);
    let handles = workload.register(&mut eng, DType::I8);
    let requests = workload.gemm_requests_with_handles(&handles);
    let mut session = eng.serve();
    let tickets: Vec<_> =
        (0..3).map(|_| session.submit(requests.clone()).expect("validated")).collect();
    for ticket in tickets {
        let outcome = session.wait(ticket);
        let stats = outcome.stats.as_host().expect("host session");
        assert_eq!(stats.packed_b_bytes, 0, "sessions never pack B for handles");
        for (out, p) in outcome.outputs.iter().zip(&slices) {
            assert_eq!(out.c, gemm_i32_ref(p.m, p.n, p.k, p.a, p.b), "{}x{}x{}", p.m, p.n, p.k);
        }
    }
    // the engine comes back warm and usable
    let mut eng = session.into_backend();
    let p = &slices[0];
    let req = GemmRequest::dense(p.m, p.n, p.k, p.a.to_vec(), p.b.to_vec()).unwrap();
    assert_eq!(eng.execute(&req).unwrap().output.c, gemm_i32_ref(p.m, p.n, p.k, p.a, p.b));
}

#[test]
fn mixed_dtype_attention_batch_cross_validates() {
    // one batch carrying both kernels: the i4-registered half and the
    // i8 dense half must each match the golden reference (workload
    // data is 4-bit, so both kernels are exact)
    let mut cfg = LlmModel::Gpt3Small.config();
    cfg.layers = 1;
    cfg.seq_len = 8;
    let workload = cfg.attention_workload(0x7A1D);
    let mut eng = CampEngine::with_threads(2);
    let handles = workload.register(&mut eng, DType::I4);
    let by_handle = workload.gemm_requests_with_handles(&handles);
    let dense = workload.gemm_requests(DType::I8);
    let slices = workload.problems();
    let mixed: Vec<GemmRequest> = by_handle
        .iter()
        .zip(&dense)
        .enumerate()
        .map(|(i, (h, d))| if i % 2 == 0 { h.clone() } else { d.clone() })
        .collect();
    let batch = eng.execute_batch(&mixed).expect("well-formed batch");
    for (out, p) in batch.outputs.iter().zip(&slices) {
        assert_eq!(out.c, gemm_i32_ref(p.m, p.n, p.k, p.a, p.b), "{}x{}x{}", p.m, p.n, p.k);
    }
}

#[test]
fn session_requests_flow_through_the_facade() {
    // minimal end-to-end serving round trip via the facade crate's
    // re-exports (what a downstream user would write)
    let (n, k, m) = (16, 24, 5);
    let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
    let a: Vec<i8> = (0..m * k).map(|i| (i % 13) as i8 - 6).collect();
    let mut eng = CampEngine::with_threads(2);
    let h = eng.register_weights(n, k, &w, DType::I8);
    let mut session = eng.serve();
    let req = GemmRequest::with_weights(m, a.clone(), h).unwrap();
    let t = session.submit(vec![req]).unwrap();
    assert_eq!(session.wait(t).outputs[0].c, gemm_i32_ref(m, n, k, &a, &w));
}

#[test]
fn energy_model_reports_camp_saving_energy() {
    let opts = small_opts();
    let model = EnergyModel::a64fx_7nm();
    let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 128, 128, 512, &opts);
    let base = simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, 128, 128, 512, &opts);
    let e_camp = model.evaluate(&camp.stats);
    let e_base = model.evaluate(&base.stats);
    assert!(
        e_camp.total_pj < 0.6 * e_base.total_pj,
        "CAMP energy {} vs baseline {}",
        e_camp.total_pj,
        e_base.total_pj
    );
}

#[test]
fn area_model_matches_paper_envelope() {
    let m = AreaModel::paper();
    let r7 = m.report(TechNode::tsmc7());
    let r22 = m.report(TechNode::gf22());
    assert!(r7.overhead_pct < 2.0);
    assert!(r22.overhead_pct < 6.0);
    assert!(r22.mm2 > r7.mm2, "older node must be bigger");
}

#[test]
fn edge_core_is_slower_but_consistent() {
    let opts = small_opts();
    let a64 = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 64, 256, &opts);
    let edge = simulate_gemm(CoreConfig::edge_riscv(), Method::Camp8, 64, 64, 256, &opts);
    assert!(a64.correct && edge.correct);
    assert!(edge.stats.cycles > a64.stats.cycles, "edge core should need more cycles");
}

#[test]
fn instruction_reduction_holds_across_every_method() {
    // CAMP must use fewer vector instructions than every baseline on the
    // same problem (the Fig. 17 claim).
    let opts = small_opts();
    let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 128, 256, &opts);
    for m in [Method::HandvInt8, Method::Gemmlowp, Method::HandvInt32, Method::OpenblasF32] {
        let r = simulate_gemm(CoreConfig::a64fx(), m, 64, 128, 256, &opts);
        assert!(
            camp.stats.vector_insts() < r.stats.vector_insts(),
            "CAMP vector insts {} not below {} ({})",
            camp.stats.vector_insts(),
            r.stats.vector_insts(),
            m.name()
        );
    }
}
