//! Workspace-level property-based tests (proptest) on the core
//! invariants.

use camp::cache::{Cache, CacheConfig};
use camp::core::backend::CampBackend;
use camp::core::gemm_i32_ref;
use camp::core::hybrid::HybridMultiplier;
use camp::core::unit::{CampUnit, Mode};
use camp::core::{CampEngine, DType, GemmRequest, Operand};
use camp::isa::encode::{decode, encode};
use camp::isa::inst::{CampMode, Inst};
use camp::isa::machine::camp_outer_product;
use camp::quant::SymmetricQuantizer;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hybrid_multiplier_equals_native_i16(a in any::<i16>(), b in any::<i16>()) {
        let mut h = HybridMultiplier::new();
        prop_assert_eq!(h.mul_i16(a, b), a as i32 * b as i32);
    }

    #[test]
    fn hybrid_multiplier_equals_native_i32(a in any::<i32>(), b in any::<i32>()) {
        let mut h = HybridMultiplier::new();
        prop_assert_eq!(h.mul_i32(a, b), a as i64 * b as i64);
    }

    #[test]
    fn camp_unit_matches_isa_semantics(a in prop::array::uniform32(any::<u8>()),
                                       b in prop::array::uniform32(any::<u8>())) {
        // widen the 32-byte arrays to 64-byte registers
        let mut ra = [0u8; 64];
        let mut rb = [0u8; 64];
        ra[..32].copy_from_slice(&a);
        ra[32..].copy_from_slice(&a);
        rb[..32].copy_from_slice(&b);
        rb[32..].copy_from_slice(&b);
        for mode in [CampMode::I8, CampMode::I4] {
            let isa_tile = camp_outer_product(mode, &ra, &rb);
            let mut unit = CampUnit::new();
            let mut acc = [[0i32; 4]; 4];
            let umode = match mode { CampMode::I8 => Mode::I8, CampMode::I4 => Mode::I4 };
            unit.execute(umode, &ra, &rb, &mut acc);
            prop_assert_eq!(acc, isa_tile);
        }
    }

    #[test]
    fn camp_engine_matches_reference(m in 1usize..12, n in 1usize..12, k in 1usize..48,
                                     seed in any::<u32>()) {
        let gen = |len: usize, s: u32| -> Vec<i8> {
            (0..len).map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s) % 200) as i8)
                .map(|v| (v as i32 - 100).clamp(-8, 7) as i8).collect()
        };
        let a = gen(m * k, seed | 1);
        let b = gen(k * n, seed.rotate_left(7) | 1);
        let mut eng = CampEngine::new();
        for dtype in [DType::I8, DType::I4] {
            let req = GemmRequest::builder()
                .m(m).n(n).k(k)
                .activation(a.clone())
                .weights(Operand::from_dense(b.clone()))
                .dtype(dtype)
                .build().expect("coherent");
            prop_assert_eq!(eng.execute(&req).unwrap().output.c, gemm_i32_ref(m, n, k, &a, &b));
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_serial(m in 1usize..26, n in 1usize..26, k in 1usize..70,
                                                  threads in 2usize..9, seed in any::<u32>()) {
        let gen = |len: usize, s: u32| -> Vec<i8> {
            (0..len).map(|i| (((i as u32).wrapping_mul(s).wrapping_add(s) % 16) as i32 - 8) as i8)
                .collect()
        };
        let a = gen(m * k, seed | 1);
        let b = gen(k * n, seed.rotate_left(11) | 1);
        for dtype in [DType::I8, DType::I4] {
            let req = GemmRequest::builder()
                .m(m).n(n).k(k)
                .activation(a.clone())
                .weights(Operand::from_dense(b.clone()))
                .dtype(dtype)
                .build().expect("coherent");
            prop_assert_eq!(
                CampEngine::with_threads(threads).execute(&req).unwrap().output,
                CampEngine::new().execute(&req).unwrap().output
            );
        }
    }

    #[test]
    fn batched_gemm_is_bit_identical_to_per_request_loop(
        m1 in 0usize..13, n1 in 0usize..13, k1 in 0usize..40,
        m2 in 1usize..13, n2 in 1usize..13, k2 in 1usize..40,
        threads in 1usize..65, seed in any::<u32>())
    {
        // mixed ragged shapes (zero dims included), one request sharing
        // its B operand with another, across 1–64 worker threads; data
        // is 4-bit so the same batch exercises both kernels
        let gen = |len: usize, s: u32| -> Vec<i8> {
            (0..len).map(|i| (((i as u32).wrapping_mul(s).wrapping_add(s) % 16) as i32 - 8) as i8)
                .collect()
        };
        let a1 = gen(m1 * k1, seed | 1);
        let b1: Arc<[i8]> = gen(k1 * n1, seed.rotate_left(5) | 1).into();
        let a2 = gen(m2 * k2, seed.rotate_left(9) | 1);
        let b2: Arc<[i8]> = gen(k2 * n2, seed.rotate_left(13) | 1).into();
        let a3 = gen(m2 * k1, seed.rotate_left(17) | 1);
        for dtype in [DType::I8, DType::I4] {
            let dense = |m: usize, n: usize, k: usize, a: &Vec<i8>, b: &Arc<[i8]>| {
                GemmRequest::builder()
                    .m(m).n(n).k(k)
                    .activation(a.clone())
                    .weights(Operand::Dense(Arc::clone(b)))
                    .dtype(dtype)
                    .build().expect("coherent")
            };
            let reqs = vec![
                dense(m1, n1, k1, &a1, &b1),
                dense(m2, n2, k2, &a2, &b2),
                dense(m2, n1, k1, &a3, &b1), // shares B with request 0
            ];
            let mut eng = CampEngine::with_threads(threads);
            let batch = eng.execute_batch(&reqs).unwrap();
            let mut per_call = CampEngine::with_threads(threads);
            for (out, req) in batch.outputs.iter().zip(&reqs) {
                prop_assert_eq!(out, &per_call.execute(req).unwrap().output);
            }
        }
    }

    #[test]
    fn serving_paths_are_bit_identical_to_serial(
        m1 in 1usize..14, n1 in 1usize..14, k1 in 1usize..40,
        m2 in 1usize..14, n2 in 1usize..14, k2 in 1usize..40,
        threads in 1usize..65, seed in any::<u32>())
    {
        // the persistent pool, the pre-packed weight registry and the
        // submit/poll session must all reproduce the serial engine
        // exactly, over ragged shapes, shared and unshared handles,
        // mixed dtypes, and 1-64 worker threads
        let gen = |len: usize, s: u32| -> Vec<i8> {
            (0..len).map(|i| (((i as u32).wrapping_mul(s).wrapping_add(s) % 16) as i32 - 8) as i8)
                .collect()
        };
        let b1 = gen(k1 * n1, seed | 1);
        let b2 = gen(k2 * n2, seed.rotate_left(5) | 1);
        let a1 = gen(m1 * k1, seed.rotate_left(9) | 1);
        let a2 = gen(m2 * k2, seed.rotate_left(13) | 1);
        let a3 = gen(m2 * k1, seed.rotate_left(17) | 1);

        let mut eng = CampEngine::with_threads(threads);
        let h1 = eng.register_weights(n1, k1, &b1, DType::I8);
        let h2 = eng.register_weights(n2, k2, &b2, DType::I4);
        let handle_req = |m: usize, a: &Vec<i8>, h| GemmRequest::with_weights(m, a.clone(), h)
            .expect("coherent");

        // handle requests == reference (persistent pool + registry)
        prop_assert_eq!(
            eng.execute(&handle_req(m1, &a1, h1)).unwrap().output.c,
            gemm_i32_ref(m1, n1, k1, &a1, &b1)
        );
        prop_assert_eq!(
            eng.execute(&handle_req(m2, &a2, h2)).unwrap().output.c,
            gemm_i32_ref(m2, n2, k2, &a2, &b2)
        );

        // mixed batch: two requests sharing handle h1, one i4 handle,
        // one plain dense request running under i4
        let reqs = vec![
            handle_req(m1, &a1, h1),
            handle_req(m2, &a2, h2),
            handle_req(m2, &a3, h1), // shares h1
            GemmRequest::builder()
                .m(m2).n(n2).k(k2)
                .activation(a2.clone())
                .weights(Operand::from_dense(b2.clone()))
                .dtype(DType::I4)
                .build().expect("coherent"),
        ];
        let batch = eng.execute_batch(&reqs).unwrap();
        prop_assert_eq!(&batch.outputs[0].c, &gemm_i32_ref(m1, n1, k1, &a1, &b1));
        prop_assert_eq!(&batch.outputs[1].c, &gemm_i32_ref(m2, n2, k2, &a2, &b2));
        prop_assert_eq!(&batch.outputs[2].c, &gemm_i32_ref(m2, n1, k1, &a3, &b1));
        prop_assert_eq!(&batch.outputs[3].c, &gemm_i32_ref(m2, n2, k2, &a2, &b2));
        // only the dense request may pack B
        let stats = batch.stats.as_host().expect("host stats");
        let i4_pack = (n2.div_ceil(4) * 4 * k2.div_ceil(32) * 32) as u64;
        prop_assert_eq!(stats.packed_b_bytes, i4_pack);

        // session: two batches in flight, collected out of order
        let mut session = eng.serve();
        let t1 = session.submit(vec![
            handle_req(m1, &a1, h1),
            handle_req(m2, &a3, h1), // shared handle
        ]).unwrap();
        let t2 = session.submit(vec![handle_req(m2, &a2, h2)]).unwrap();
        let out2 = session.wait(t2);
        let out1 = session.wait(t1);
        prop_assert_eq!(&out1.outputs[0], &batch.outputs[0]);
        prop_assert_eq!(&out1.outputs[1], &batch.outputs[2]);
        prop_assert_eq!(&out2.outputs[0], &batch.outputs[1]);
        prop_assert_eq!(out1.stats.as_host().expect("host").packed_b_bytes, 0);
        prop_assert_eq!(out2.stats.as_host().expect("host").packed_b_bytes, 0);
    }

    #[test]
    fn encode_decode_roundtrip_register_forms(rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32) {
        use camp::isa::reg::{ScalarReg, VectorReg};
        let insts = [
            Inst::Add { rd: ScalarReg(rd), rs1: ScalarReg(rs1), rs2: ScalarReg(rs2) },
            Inst::Smmla { vd: VectorReg(rd), vs1: VectorReg(rs1), vs2: VectorReg(rs2) },
            Inst::Camp { mode: CampMode::I4, vd: VectorReg(rd), vs1: VectorReg(rs1), vs2: VectorReg(rs2) },
        ];
        for i in insts {
            prop_assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
        }
    }

    #[test]
    fn encode_decode_roundtrip_immediates(imm in -8_000_000i64..8_000_000) {
        use camp::isa::reg::ScalarReg;
        let i = Inst::Addi { rd: ScalarReg(3), rs: ScalarReg(4), imm };
        prop_assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
    }

    #[test]
    fn cache_accounting_invariant(addrs in prop::collection::vec(0u64..(1 << 16), 1..400)) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1 << 10, assoc: 2, line_bytes: 64, hit_latency: 1, prefetch: false,
        });
        for &a in &addrs {
            c.access(a, a % 3 == 0, false);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.evictions <= s.misses);
    }

    #[test]
    fn quantizer_roundtrip_error_bound(vals in prop::collection::vec(-100f32..100.0, 1..200),
                                       bits in 2u32..9) {
        let q = SymmetricQuantizer::fit(&vals, bits);
        for &v in &vals {
            let back = q.dequantize(q.quantize(v));
            // error bounded by one step (clipping only at the extremes)
            prop_assert!((back - v).abs() <= q.scale * 1.01 + 1e-6,
                "v={v} back={back} scale={}", q.scale);
        }
    }

    #[test]
    fn quantized_gemm_error_shrinks_with_bits(seed in any::<u32>()) {
        let n = 8usize;
        let gen = |s: u32| -> Vec<f32> {
            (0..n * n).map(|i| (((i as u32).wrapping_mul(s) % 1000) as f32 / 500.0) - 1.0).collect()
        };
        let a_f = gen(seed | 3);
        let b_f = gen(seed.rotate_left(9) | 5);
        let mut err = Vec::new();
        let mut eng = CampEngine::new();
        for bits in [2u32, 4, 8] {
            let qa = SymmetricQuantizer::fit(&a_f, bits);
            let qb = SymmetricQuantizer::fit(&b_f, bits);
            let req = GemmRequest::dense(
                n, n, n, qa.quantize_all(&a_f), qb.quantize_all(&b_f),
            ).expect("coherent");
            let c = eng.execute(&req).unwrap().output.c;
            let mut e = 0f64;
            for i in 0..n {
                for j in 0..n {
                    let mut want = 0f32;
                    for l in 0..n {
                        want += a_f[i * n + l] * b_f[l * n + j];
                    }
                    let got = c[i * n + j] as f32 * qa.scale * qb.scale;
                    e += ((want - got) as f64).powi(2);
                }
            }
            err.push(e);
        }
        // 8-bit error must not exceed 2-bit error
        prop_assert!(err[2] <= err[0] + 1e-9, "8-bit {} vs 2-bit {}", err[2], err[0]);
    }
}

proptest! {
    // simulation is costlier per case than the host engine, so this
    // block runs fewer cases; the deterministic all-methods sweep lives
    // in tests/sim_parallel.rs
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulated_driver_is_bit_identical_across_schedulers(
        m in 1usize..17, n in 1usize..17, k in 1usize..150,
        threads in 2usize..7, mi in 0usize..7, seed in any::<u32>())
    {
        // random ragged shape, random §5.3 method, random pool width:
        // the serial scheduler and the worker pool must agree on every
        // output bit and every merged stats field
        use camp::gemm::{simulate_gemm_on, GemmOptions, Method, SerialScheduler};
        use camp::pipeline::CoreConfig;
        let method = Method::all()[mi];
        let opts = GemmOptions {
            seed: (seed as u64) | 1,
            blocking: Some((8, 16, 128)),
            ..GemmOptions::default()
        };
        let serial =
            simulate_gemm_on(CoreConfig::a64fx(), method, m, n, k, &opts, &SerialScheduler);
        let pool = camp::core::WorkerPool::new(threads);
        let parallel = simulate_gemm_on(CoreConfig::a64fx(), method, m, n, k, &opts, &pool);
        prop_assert!(serial.correct, "{} wrong at {}x{}x{}", method.name(), m, n, k);
        prop_assert_eq!(&serial.c, &parallel.c);
        prop_assert_eq!(serial.stats, parallel.stats);
        prop_assert_eq!(serial.serial_cycles, parallel.serial_cycles);
    }
}
