//! Backend parity: the acceptance property of the unified GEMM API.
//!
//! The same [`GemmRequest`] batch — random shapes, mixed dtypes, ragged
//! and degenerate problems, shared dense operands and registered
//! weight handles — must execute on the host [`CampEngine`] and on
//! the cycle-accurate [`SimBackend`] with **bit-identical** outputs,
//! both equal to the plain i32 reference. Plus: out-of-order ticket
//! redemption on a `Session<SimBackend>` (simulated serving), and the
//! stats-frame agreement the figure harnesses rely on.

use std::sync::Arc;

use camp::core::backend::{CampBackend, SimBackend};
use camp::core::{gemm_i32_ref, CampEngine, DType, GemmRequest, Operand};
use camp::pipeline::CoreConfig;
use proptest::prelude::*;

fn gen_i4(len: usize, s: u32) -> Vec<i8> {
    (0..len).map(|i| (((i as u32).wrapping_mul(s).wrapping_add(s) % 16) as i32 - 8) as i8).collect()
}

fn dense(m: usize, n: usize, k: usize, a: Vec<i8>, b: Arc<[i8]>, dtype: DType) -> GemmRequest {
    GemmRequest::builder()
        .m(m)
        .n(n)
        .k(k)
        .activation(a)
        .weights(Operand::Dense(b))
        .dtype(dtype)
        .build()
        .expect("generated shapes are coherent")
}

proptest! {
    // simulation is costly per case, so few cases with rich batches
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_requests_execute_identically_on_both_substrates(
        m1 in 1usize..10, n1 in 1usize..10, k1 in 1usize..40,
        m2 in 0usize..10, n2 in 1usize..10, k2 in 1usize..40,
        threads in 1usize..5, seed in any::<u32>())
    {
        // unique tensors, shared by Arc identity where problems overlap
        let b1: Arc<[i8]> = gen_i4(k1 * n1, seed | 1).into();
        let b2: Arc<[i8]> = gen_i4(k2 * n2, seed.rotate_left(5) | 1).into();
        let a1 = gen_i4(m1 * k1, seed.rotate_left(9) | 1);
        let a2 = gen_i4(m2 * k2, seed.rotate_left(13) | 1);
        let a3 = gen_i4(m2 * k1, seed.rotate_left(17) | 1);
        let wreg = gen_i4(k1 * n1, seed.rotate_left(21) | 1);

        let mut host = CampEngine::with_threads(threads);
        let mut sim = SimBackend::new(CoreConfig::a64fx()).with_threads(threads);
        // one registered weight per backend (the handle operand of the
        // acceptance criterion)
        let hh = CampBackend::register_weights(&mut host, n1, k1, &wreg, DType::I8);
        let sh = sim.register_weights(n1, k1, &wreg, DType::I8);

        // ragged batch: i8 + i4 + shared-B + possibly-degenerate + handle
        let build = |h| -> Vec<GemmRequest> { vec![
            dense(m1, n1, k1, a1.clone(), Arc::clone(&b1), DType::I8),
            dense(m2, n2, k2, a2.clone(), Arc::clone(&b2), DType::I4),
            dense(m2, n1, k1, a3.clone(), Arc::clone(&b1), DType::I8), // shares B
            GemmRequest::with_weights(m1, a1.clone(), h).expect("coherent"),
        ]};
        let host_batch = host.execute_batch(&build(hh)).expect("host batch");
        let sim_batch = sim.execute_batch(&build(sh)).expect("sim batch");

        let expect = [
            gemm_i32_ref(m1, n1, k1, &a1, &b1),
            gemm_i32_ref(m2, n2, k2, &a2, &b2),
            gemm_i32_ref(m2, n1, k1, &a3, &b1),
            gemm_i32_ref(m1, n1, k1, &a1, &wreg),
        ];
        for (i, want) in expect.iter().enumerate() {
            prop_assert_eq!(&host_batch.outputs[i].c, want, "host problem {}", i);
            prop_assert_eq!(&sim_batch.outputs[i].c, want, "sim problem {}", i);
        }
        prop_assert_eq!(&host_batch.outputs, &sim_batch.outputs);
    }

    #[test]
    fn simulated_sessions_redeem_tickets_out_of_order(
        m in 1usize..6, n in 1usize..8, k in 1usize..24, seed in any::<u32>())
    {
        let w = gen_i4(k * n, seed | 1);
        let mut sim = SimBackend::new(CoreConfig::a64fx());
        let h = sim.register_weights(n, k, &w, DType::I8);
        let activations: Vec<Vec<i8>> = (0..3)
            .map(|i| gen_i4(m * k, seed.rotate_left(3 + 2 * i) | 1))
            .collect();
        let mut session = sim.serve();
        let tickets: Vec<_> = activations
            .iter()
            .map(|a| {
                let req = GemmRequest::with_weights(m, a.clone(), h).expect("coherent");
                session.submit(vec![req]).expect("validated")
            })
            .collect();
        // redeem newest-first: out-of-order collection on the simulator
        for (a, t) in activations.iter().zip(&tickets).rev() {
            let outcome = session.wait(*t);
            prop_assert_eq!(&outcome.outputs[0].c, &gemm_i32_ref(m, n, k, a, &w));
            prop_assert!(outcome.stats.as_sim().expect("sim serving").cycles > 0);
        }
        let sim = session.into_backend();
        prop_assert_eq!(sim.threads(), 1);
    }
}

/// The figure harnesses route camp methods through the backend while
/// baselines use the classic driver path: both must report the same
/// single-core stats for the same shape (timing is operand-value
/// independent, so the RNG workload and a request workload agree).
#[test]
fn request_path_stats_match_the_classic_driver_path() {
    use camp::gemm::{simulate_gemm, GemmOptions, Method};
    let (m, n, k) = (16, 16, 64);
    let classic =
        simulate_gemm(CoreConfig::a64fx(), Method::Camp8, m, n, k, &GemmOptions::default())
            .into_single_core();
    assert!(classic.correct);

    let req = GemmRequest::dense(m, n, k, gen_i4(m * k, 3), gen_i4(k * n, 5)).unwrap();
    let outcome = SimBackend::new(CoreConfig::a64fx()).execute(&req).unwrap();
    let stats = outcome.stats.as_sim().expect("sim stats");
    assert_eq!(stats.cycles, classic.stats.cycles, "single-core cycles must agree");
    assert_eq!(stats.insts, classic.stats.insts, "instruction counts must agree");
}
