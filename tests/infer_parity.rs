//! Inference parity: the acceptance property of `camp-infer`.
//!
//! One prompt → prefill → N KV-cached decode steps must produce the
//! same token stream (1) on the host `CampEngine`, (2) on the
//! cycle-accurate `SimBackend`, (3) through a `Dispatcher` tenant, and
//! (4) on the pure `gemm_i32_ref` executor — with every layer's GeMM
//! output cross-validated against the reference as it happens
//! (`CheckedExec`). Plus the KV-cache property itself: each decode
//! step is bit-identical to recomputing the full sequence from
//! scratch.

use std::sync::Arc;

use camp::core::backend::{CampBackend, SimBackend};
use camp::core::CampEngine;
use camp::infer::{
    BackendExec, CheckedExec, GemmExec, InferContext, InferSession, KvCache, KvPolicy, Model,
    RefExec,
};
use camp::models::TransformerConfig;
use camp::pipeline::CoreConfig;
use proptest::prelude::*;

/// A roomy cache for `cfg` (parity needs no evictions).
fn ample_kv(cfg: TransformerConfig, rows: usize) -> KvCache {
    KvCache::new(cfg.layers, cfg.hidden, rows, KvPolicy::Reject)
}

/// Prefill + `steps` decodes with `exec`, returning the token stream.
fn stream(
    model: &Model,
    exec: &mut dyn GemmExec,
    prompt: &[u32],
    steps: usize,
    rows: usize,
) -> Vec<u32> {
    let mut ctx = InferContext::new(ample_kv(model.config(), rows));
    let t = ctx.prefill_with(model, exec, prompt).expect("prefill");
    let mut out = vec![t.first];
    for _ in 0..steps {
        out.push(ctx.decode_with(model, exec).expect("decode"));
    }
    out
}

proptest! {
    // each case runs several full forward passes on the cycle-accurate
    // simulator, so few cases with small models
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn kv_cached_decode_is_bit_identical_on_both_backends(
        seed in any::<u32>(),
        heads in 1usize..3,
        layers in 1usize..3,
        prompt_len in 1usize..4,
        steps in 1usize..3,
    ) {
        let cfg = TransformerConfig {
            hidden: 4 * heads,
            ff_dim: 8,
            heads,
            layers,
            seq_len: 16,
        };
        let vocab = 24;
        let model = Model::new(cfg, vocab, u64::from(seed));
        let prompt: Vec<u32> =
            (0..prompt_len).map(|i| (seed >> i) % vocab as u32).collect();
        let rows = prompt_len + steps;

        // ground truth: the pure reference executor
        let expect = stream(&model, &mut RefExec::new(&model), &prompt, steps, rows);

        // host engine, every layer's GeMM checked against gemm_i32_ref
        let mut engine = CampEngine::new();
        let eng_handles = model.register(&mut engine);
        let mut checked = CheckedExec::new(&model, BackendExec::new(&mut engine, &eng_handles));
        prop_assert_eq!(&stream(&model, &mut checked, &prompt, steps, rows), &expect);

        // cycle-accurate simulator, same per-layer check
        let mut sim = SimBackend::new(CoreConfig::a64fx());
        let sim_handles = model.register(&mut sim);
        let mut checked = CheckedExec::new(&model, BackendExec::new(&mut sim, &sim_handles));
        prop_assert_eq!(&stream(&model, &mut checked, &prompt, steps, rows), &expect);

        // KV-cache property: every decode step equals recomputing the
        // whole sequence from scratch (prompt + tokens served so far)
        for i in 0..steps {
            let mut full: Vec<u32> = prompt.clone();
            full.extend(&expect[..=i]);
            let mut ctx = InferContext::new(ample_kv(cfg, full.len()));
            let recomputed = ctx
                .prefill_with(&model, &mut RefExec::new(&model), &full)
                .expect("recompute");
            prop_assert_eq!(recomputed.first, expect[i + 1],
                "decode step {} diverged from full recompute", i);
        }
    }
}

/// The serving path: ≥2 concurrent `InferSession`s sharing one engine
/// through the dispatcher must each reproduce the reference stream of
/// their own prompt, even when their decode steps interleave.
#[test]
fn interleaved_dispatcher_sessions_match_the_reference() {
    let cfg = TransformerConfig { hidden: 8, ff_dim: 16, heads: 2, layers: 2, seq_len: 32 };
    let model = Arc::new(Model::new(cfg, 24, 2024));
    let mut engine = CampEngine::new();
    let handles = Arc::new(model.register(&mut engine));
    let dispatcher = engine.dispatch();

    let prompts: [&[u32]; 3] = [&[1, 2, 3], &[4, 5], &[6, 7, 8, 9]];
    let mut sessions: Vec<InferSession<CampEngine>> = prompts
        .iter()
        .map(|_| InferSession::new(&dispatcher, Arc::clone(&model), Arc::clone(&handles)))
        .collect();
    let mut streams: Vec<Vec<u32>> = Vec::new();
    for (s, p) in sessions.iter_mut().zip(prompts) {
        streams.push(vec![s.prefill(p).expect("prefill").first]);
    }
    // round-robin decode so the dispatcher interleaves the tenants
    for _ in 0..4 {
        for (s, st) in sessions.iter_mut().zip(&mut streams) {
            st.push(s.decode_step().expect("decode"));
        }
    }
    for (p, st) in prompts.iter().zip(&streams) {
        let expect = stream(&model, &mut RefExec::new(&model), p, 4, p.len() + 4);
        assert_eq!(st, &expect, "session with prompt {p:?} diverged under interleaving");
    }
}
