//! Multi-tenant serving integration suite: N concurrent sessions over
//! one dispatcher-owned engine must be **bit-identical** to the serial
//! reference, bounded in memory (admission control), bounded in latency
//! (priority + aging), and clean under weight-eviction races — with no
//! leaked worker-pool jobs or staging permits after a drain.
//!
//! The deterministic scheduling-order proofs (decode-overtakes-prefill,
//! exact saturation bound, steal accounting) live in
//! `camp_core::dispatch`'s unit tests against a gated mock backend; the
//! exhaustive interleaving proofs live in the `--cfg loom` model suite.
//! This file drives the *real* `CampEngine` from real OS threads.

use std::sync::Arc;

use camp::core::backend::CampBackend;
use camp::core::dispatch::MAX_STAGED;
use camp::core::{
    gemm_i32_ref, CampEngine, DType, DispatchOptions, Dispatcher, GemmRequest, Priority,
    RequestError, StealPolicy,
};
use proptest::prelude::*;

fn gen(len: usize, s: u32) -> Vec<i8> {
    (0..len).map(|i| (((i as u32).wrapping_mul(s).wrapping_add(s) % 16) as i32 - 8) as i8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N tenants × 1–64 engine threads × both steal policies, each
    /// tenant streaming ragged mixed-dtype batches (registered i8 and
    /// i4 handles plus dense operands) from its own OS thread and
    /// redeeming tickets out of submission order: every output bit must
    /// equal `gemm_i32_ref`, and draining must hand back a warm engine
    /// with an empty worker-pool queue.
    #[test]
    fn n_tenants_are_bit_identical_to_the_reference(
        sessions in 1usize..9, threads in 1usize..65,
        stagers in 1usize..5, pinned in any::<bool>(), seed in any::<u32>())
    {
        let n1 = 1 + (seed % 13) as usize;
        let k1 = 1 + ((seed >> 8) % 39) as usize;
        let n2 = 1 + ((seed >> 16) % 13) as usize;
        let k2 = 1 + ((seed >> 24) % 39) as usize;
        let b1 = gen(k1 * n1, seed | 1);
        let b2 = gen(k2 * n2, seed.rotate_left(5) | 1);

        let mut engine = CampEngine::with_threads(threads);
        let h1 = engine.register_weights(n1, k1, &b1, DType::I8);
        let h2 = engine.register_weights(n2, k2, &b2, DType::I4);
        let pool = engine.worker_pool();

        let steal = if pinned { StealPolicy::Pinned } else { StealPolicy::Eager };
        let opts = DispatchOptions { stagers, queue_depth: 16, steal };
        let dispatcher = Arc::new(Dispatcher::with_options(engine, opts));

        let tenants: Vec<_> = (0..sessions)
            .map(|s| {
                let mut session = dispatcher.session();
                let s_seed = seed.rotate_left(s as u32).wrapping_add(s as u32) | 1;
                let (b1, b2) = (b1.clone(), b2.clone());
                std::thread::spawn(move || {
                    // ragged per-tenant shapes
                    let ma = 1 + (s_seed % 11) as usize;
                    let mb = 1 + ((s_seed >> 7) % 11) as usize;
                    let a1 = gen(ma * k1, s_seed);
                    let a2 = gen(mb * k2, s_seed.rotate_left(3));
                    let a3 = gen(mb * k1, s_seed.rotate_left(7));
                    let prio = if s % 2 == 0 { Priority::Decode } else { Priority::Prefill };

                    let t1 = session
                        .submit_with(
                            vec![
                                GemmRequest::with_weights(ma, a1.clone(), h1).unwrap(),
                                GemmRequest::with_weights(mb, a3.clone(), h1).unwrap(),
                            ],
                            prio,
                            None,
                        )
                        .expect("tenant batch admits");
                    let t2 = session
                        .submit(vec![GemmRequest::with_weights(mb, a2.clone(), h2).unwrap()])
                        .expect("tenant batch admits");
                    let t3 = session
                        .submit(vec![
                            GemmRequest::dense(ma, n1, k1, a1.clone(), b1.clone()).unwrap(),
                        ])
                        .expect("tenant batch admits");

                    // out-of-submission-order redemption
                    let out3 = session.wait(t3).expect("dense batch completes");
                    let out1 = session.wait(t1).expect("handle batch completes");
                    let out2 = session.wait(t2).expect("i4 handle batch completes");
                    assert_eq!(out1.outputs[0].c, gemm_i32_ref(ma, n1, k1, &a1, &b1));
                    assert_eq!(out1.outputs[1].c, gemm_i32_ref(mb, n1, k1, &a3, &b1));
                    assert_eq!(out2.outputs[0].c, gemm_i32_ref(mb, n2, k2, &a2, &b2));
                    assert_eq!(out3.outputs[0].c, out1.outputs[0].c, "dense vs handle parity");
                    // steady-state handle batches pack zero B bytes
                    assert_eq!(out1.stats.as_host().expect("host stats").packed_b_bytes, 0);
                })
            })
            .collect();
        for t in tenants {
            t.join().expect("tenant thread panicked");
        }

        let stats = dispatcher.stats();
        prop_assert_eq!(stats.executed, 3 * sessions as u64);
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.staging_live, 0, "drained dispatcher leaked staging permits");
        if pinned {
            prop_assert_eq!(stats.stolen, 0, "pinned stagers must never steal");
        }

        // drain: the warm engine comes back intact, the pool queue empty
        let mut engine = Arc::into_inner(dispatcher)
            .expect("all tenants dropped their handles")
            .into_backend();
        if let Some(pool) = pool {
            prop_assert_eq!(pool.queued_jobs(), 0, "drained dispatcher leaked pool jobs");
        }
        let a = gen(3 * k1, seed.rotate_left(11) | 1);
        let out = engine
            .execute(&GemmRequest::with_weights(3, a.clone(), h1).unwrap())
            .expect("handle survives the dispatcher");
        prop_assert_eq!(out.output.c, gemm_i32_ref(3, n1, k1, &a, &b1));
    }
}

/// A prefill flood from several tenants cannot starve a decode batch
/// past the documented window: at the moment the decode batch is
/// submitted, only work already claimed past the queues (at most
/// `MAX_STAGED` per flood session, plus one more claim per stager
/// racing the submission) can still beat it to the engine.
#[test]
fn a_prefill_flood_cannot_starve_decode_beyond_the_staging_window() {
    let (n, k) = (32, 256);
    let b = gen(k * n, 0x5eed | 1);
    let mut engine = CampEngine::with_threads(1);
    let h = engine.register_weights(n, k, &b, DType::I8);

    let flood_sessions = 3;
    let stagers = 2;
    let opts = DispatchOptions { stagers, queue_depth: 64, steal: StealPolicy::Eager };
    let dispatcher = Dispatcher::with_options(engine, opts);

    let mut flood = Vec::new();
    for s in 0..flood_sessions {
        let mut session = dispatcher.session();
        let tickets: Vec<_> = (0..12)
            .map(|i| {
                let m = 4 + (s + i) % 5;
                let a = gen(m * k, (s * 31 + i) as u32 | 1);
                session
                    .submit(vec![GemmRequest::with_weights(m, a, h).unwrap()])
                    .expect("flood batch admits")
            })
            .collect();
        flood.push((session, tickets));
    }

    let mut decode = dispatcher.session();
    let executed_before = dispatcher.stats().executed;
    let a = gen(2 * k, 0x0dec | 1);
    let t = decode
        .submit_with(
            vec![GemmRequest::with_weights(2, a.clone(), h).unwrap()],
            Priority::Decode,
            None,
        )
        .expect("decode batch admits");
    let out = decode.wait(t).expect("decode batch completes");
    assert_eq!(out.outputs[0].c, gemm_i32_ref(2, n, k, &a, &b));

    let overtaken_by = dispatcher.stats().executed - executed_before - 1;
    let bound = (MAX_STAGED * flood_sessions + stagers) as u64;
    assert!(
        overtaken_by <= bound,
        "decode waited behind {overtaken_by} prefill batches; the staging window bounds it at {bound}"
    );

    // the flood itself still drains completely and correctly
    for (mut session, tickets) in flood {
        for t in tickets {
            assert!(session.wait(t).expect("flood batch completes").outputs[0].m >= 4);
        }
    }
}

/// Admission control on a live engine: the per-session bound caps
/// in-flight batches, a saturated session re-admits deterministically
/// once one batch is collected, and a full drain leaves no staging
/// permits or queued pool jobs behind.
#[test]
fn saturation_bounds_in_flight_and_recovers_without_leaks() {
    let (n, k) = (64, 512);
    let b = gen(k * n, 0xbead | 1);
    let mut engine = CampEngine::with_threads(2);
    let h = engine.register_weights(n, k, &b, DType::I8);
    let pool = engine.worker_pool().expect("threaded engine has a pool");

    let dispatcher =
        Dispatcher::with_options(engine, DispatchOptions { stagers: 1, ..Default::default() });
    let mut session = dispatcher.session_with_depth(2);

    let mut tickets = std::collections::VecDeque::new();
    let mut saturated = false;
    for i in 0..1000 {
        let m = 8 + i % 4;
        let a = gen(m * k, i as u32 | 1);
        match session.submit(vec![GemmRequest::with_weights(m, a, h).unwrap()]) {
            Ok(t) => tickets.push_back(t),
            Err(RequestError::Saturated { depth }) => {
                assert_eq!(depth, 2, "the documented per-session bound");
                // `in_flight()` counts uncollected tickets, but the
                // admission bound counts *pending* batches — on a live
                // engine a completion can race the submit loop and free
                // a slot for one more admission, so uncollected tickets
                // can exceed the bound at the instant rejection fires.
                // The exact-at-the-bound property is pinned
                // deterministically by the permit-gated mock test in
                // camp_core::dispatch; here we assert the bound's worth
                // of work is genuinely outstanding.
                assert!(
                    session.in_flight() >= 2,
                    "rejection fired with fewer uncollected tickets than the bound"
                );
                saturated = true;
                break;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(saturated, "a depth-2 session outpaced a 512-deep GeMM 1000 times");

    // waiting out pending batches re-opens admission — saturation is a
    // state, not a ratchet. On a live engine a completion can race the
    // submit loop above and slip one extra admission in, so collecting
    // a single (possibly already-completed) ticket is not guaranteed to
    // free a pending slot; drain oldest tickets until a submission is
    // admitted. It must happen before the deque empties: each wait
    // returns only after its batch completed (freeing that batch's
    // permit), so at the latest the last wait leaves zero pending. The
    // exact one-slot recovery is pinned deterministically by the
    // permit-gated mock test in camp_core::dispatch.
    let a = gen(4 * k, 0x7e57 | 1);
    let mut readmitted = false;
    while let Some(oldest) = tickets.pop_front() {
        assert!(session.wait(oldest).is_ok());
        match session.submit(vec![GemmRequest::with_weights(4, a.clone(), h).unwrap()]) {
            Ok(t) => {
                tickets.push_back(t);
                readmitted = true;
                break;
            }
            Err(RequestError::Saturated { .. }) => continue,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(readmitted, "draining every in-flight batch must re-open admission");
    for t in tickets {
        assert!(session.wait(t).is_ok());
    }

    let stats = dispatcher.stats();
    assert!(stats.rejected >= 1);
    assert_eq!(stats.staging_live, 0, "drained session leaked staging permits");
    assert_eq!(pool.queued_jobs(), 0, "drained dispatcher leaked pool jobs");
    assert_eq!(stats.executed, stats.submitted, "every admitted batch executed");

    drop(session);
    let mut engine = dispatcher.into_backend();
    let out = engine.execute(&GemmRequest::with_weights(4, a.clone(), h).unwrap()).unwrap();
    assert_eq!(out.output.c, gemm_i32_ref(4, n, k, &a, &b));
}

/// Weight eviction racing four live tenants: every in-flight batch on
/// the condemned handle either completes exactly or errs `StaleHandle`
/// — never a panic — while batches on the surviving handle stay exact
/// throughout.
#[test]
fn eviction_racing_live_tenants_errs_stale_and_never_panics() {
    let (n, k) = (16, 64);
    let b1 = gen(k * n, 0xdead | 1);
    let b2 = gen(k * n, 0xbeef | 1);
    let mut engine = CampEngine::with_threads(2);
    let h1 = engine.register_weights(n, k, &b1, DType::I8);
    let h2 = engine.register_weights(n, k, &b2, DType::I8);

    let dispatcher = Arc::new(Dispatcher::with_options(engine, DispatchOptions::default()));
    let tenants: Vec<_> = (0..4)
        .map(|s| {
            let mut session = dispatcher.session();
            let (b1, b2) = (b1.clone(), b2.clone());
            std::thread::spawn(move || {
                let mut stale_seen = 0u32;
                for i in 0..20 {
                    let m = 1 + (s + i) % 6;
                    let a = gen(m * k, (s * 131 + i) as u32 | 1);
                    // the condemned handle: admission or completion may
                    // fail stale, but a completed batch must be exact
                    match session.submit(vec![GemmRequest::with_weights(m, a.clone(), h1).unwrap()])
                    {
                        Ok(t) => match session.wait(t) {
                            Ok(out) => {
                                assert_eq!(out.outputs[0].c, gemm_i32_ref(m, n, k, &a, &b1))
                            }
                            Err(RequestError::StaleHandle) => stale_seen += 1,
                            Err(e) => panic!("unexpected completion error: {e}"),
                        },
                        Err(RequestError::StaleHandle) => stale_seen += 1,
                        Err(e) => panic!("unexpected admission error: {e}"),
                    }
                    // the surviving handle is never disturbed
                    let t = session
                        .submit(vec![GemmRequest::with_weights(m, a.clone(), h2).unwrap()])
                        .expect("surviving handle always admits");
                    let out = session.wait(t).expect("surviving handle always completes");
                    assert_eq!(out.outputs[0].c, gemm_i32_ref(m, n, k, &a, &b2));
                }
                stale_seen
            })
        })
        .collect();

    // race the eviction into the middle of the tenant loops
    std::thread::sleep(std::time::Duration::from_millis(2));
    let meta = dispatcher.evict_weights(h1).expect("first eviction wins");
    assert_eq!((meta.n, meta.k), (n, k));
    assert_eq!(dispatcher.evict_weights(h1).unwrap_err(), RequestError::StaleHandle);

    let stale_total: u32 = tenants.into_iter().map(|t| t.join().expect("tenant panicked")).sum();
    let stats = dispatcher.stats();
    assert_eq!(stats.evictions, 1);
    assert!(
        stale_total as u64 >= stats.stale_failures,
        "every driver-side stale failure surfaced to a tenant"
    );

    // post-race: the registration is really gone from the engine
    let mut engine = Arc::into_inner(dispatcher).expect("all tenants joined").into_backend();
    assert_eq!(engine.evict_weights(h1).unwrap_err(), RequestError::StaleHandle);
    assert!(engine.evict_weights(h2).is_ok());
}
