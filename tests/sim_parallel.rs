//! Cross-crate tests of the parallel simulated driver: scheduling the
//! driver's independent (jc, pc) block units (and batch items) on
//! `camp-core`'s persistent [`WorkerPool`] must be **bit-invisible** —
//! identical output bits and identical merged [`SimStats`] at any
//! thread count, across every §5.3 dispatch method, on ragged shapes.
//!
//! This is the acceptance contract of the parallel decomposition (see
//! `docs/SIMULATOR.md`): the unit grid and the merge order — not the
//! scheduler — define the result.

use camp::core::WorkerPool;
use camp::gemm::{
    simulate_gemm_batch, simulate_gemm_batch_on, simulate_gemm_on, DType, GemmOptions, GemmProblem,
    Method, SerialScheduler,
};
use camp::pipeline::{CoreConfig, SimStats};

/// Blocking that splits modest problems into several column-strip
/// lanes and several depth blocks for every kernel geometry.
fn multi_unit_opts() -> GemmOptions {
    GemmOptions { blocking: Some((16, 32, 128)), ..GemmOptions::default() }
}

#[test]
fn one_sim_thread_is_bit_identical_to_many_across_all_methods() {
    let pool = WorkerPool::new(4);
    // ragged on purpose: no dimension is a multiple of any kernel's
    // mr/nr/k-step, so padding and edge blocks are all exercised
    let (m, n, k) = (20, 70, 260);
    for method in Method::all() {
        let opts = multi_unit_opts();
        let serial =
            simulate_gemm_on(CoreConfig::a64fx(), method, m, n, k, &opts, &SerialScheduler);
        assert!(serial.correct, "{} wrong serially", method.name());
        assert!(serial.lanes > 1, "{} must decompose into lanes", method.name());
        let parallel = simulate_gemm_on(CoreConfig::a64fx(), method, m, n, k, &opts, &pool);
        assert!(parallel.correct, "{} wrong on the pool", method.name());
        assert_eq!(serial.c, parallel.c, "{} output bits diverged", method.name());
        assert_eq!(serial.stats, parallel.stats, "{} stats diverged", method.name());
        assert_eq!(serial.serial_cycles, parallel.serial_cycles, "{}", method.name());
        assert_eq!(serial.lanes, parallel.lanes, "{}", method.name());
        assert_eq!(serial.gops, parallel.gops, "{}", method.name());
    }
}

#[test]
fn thread_count_is_invisible_on_a_second_ragged_shape() {
    // a second shape and a wider pool, for the two reference-extreme
    // kernels (integer camp and the f32 baseline, whose C merge uses
    // floating-point accumulation)
    let pool = WorkerPool::new(8);
    for method in [Method::Camp8, Method::OpenblasF32] {
        let opts = multi_unit_opts();
        let serial =
            simulate_gemm_on(CoreConfig::a64fx(), method, 13, 37, 141, &opts, &SerialScheduler);
        let parallel = simulate_gemm_on(CoreConfig::a64fx(), method, 13, 37, 141, &opts, &pool);
        assert!(serial.correct && parallel.correct, "{}", method.name());
        assert_eq!(serial.c, parallel.c, "{}", method.name());
        assert_eq!(serial.stats, parallel.stats, "{}", method.name());
    }
}

fn fill(len: usize, seed: i32) -> Vec<i8> {
    (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
}

#[test]
fn batch_on_the_pool_matches_the_serial_batch_and_solo_runs() {
    // attention-style inventory: several small problems, three sharing
    // one weight matrix (the dedup path), one i4 problem mixed in
    let (n, k) = (12, 48);
    let w_shared = fill(k * n, 5);
    let w_other = fill(k * n, 9);
    let acts: Vec<Vec<i8>> = (0..4).map(|i| fill(6 * k, 3 + 2 * i)).collect();
    let problems = [
        GemmProblem::new(6, n, k, &acts[0], &w_shared),
        GemmProblem::new(6, n, k, &acts[1], &w_other),
        GemmProblem::new(6, n, k, &acts[2], &w_shared), // dedup vs #0
        GemmProblem::new(6, n, k, &acts[3], &w_shared).with_dtype(DType::I4), // i4: own layout
    ];
    let opts = GemmOptions::default();
    let serial = simulate_gemm_batch(CoreConfig::a64fx(), &problems, &opts);
    let pool = WorkerPool::new(4);
    let parallel = simulate_gemm_batch_on(CoreConfig::a64fx(), &problems, &opts, &pool);
    assert_eq!(serial.results.len(), problems.len());
    assert_eq!(serial.stats, parallel.stats, "batch stats diverged");
    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        assert!(s.correct, "problem {i} wrong serially");
        assert_eq!(s.c, p.c, "problem {i} output bits diverged");
        assert_eq!(s.stats, p.stats, "problem {i} stats diverged");
    }
    // every problem's output matches a solo run of the same descriptor
    // (the dedup consumer pays less pack work but computes the same C)
    for (i, p) in problems.iter().enumerate() {
        let solo = simulate_gemm_batch(CoreConfig::a64fx(), &[*p], &opts);
        assert_eq!(solo.results[0].c, serial.results[i].c, "problem {i} vs solo");
    }
    // the i4/i8 problems really ran under different kernels
    assert!(serial.results[0].stats.camp_issues_i8 > 0);
    assert_eq!(serial.results[0].stats.camp_issues_i4, 0);
    assert!(serial.results[3].stats.camp_issues_i4 > 0);
    // batch merge law: cycles = max across items, work sums
    let expect_cycles = serial.results.iter().map(|r| r.stats.cycles).max().unwrap();
    let expect_insts: u64 = serial.results.iter().map(|r| r.stats.insts).sum();
    assert_eq!(serial.stats.cycles, expect_cycles);
    assert_eq!(serial.stats.insts, expect_insts);
}

#[test]
fn engine_pool_is_sharable_with_the_simulated_driver() {
    // one thread budget for both halves: the engine's own pool
    // schedules simulated block units with bit-identical results
    let engine = camp::core::CampEngine::with_threads(3);
    let pool = engine.worker_pool().expect("parallel engine has a pool");
    let opts = multi_unit_opts();
    let serial =
        simulate_gemm_on(CoreConfig::a64fx(), Method::Camp8, 20, 40, 260, &opts, &SerialScheduler);
    let on_engine_pool =
        simulate_gemm_on(CoreConfig::a64fx(), Method::Camp8, 20, 40, 260, &opts, &*pool);
    assert_eq!(serial.c, on_engine_pool.c);
    assert_eq!(serial.stats, on_engine_pool.stats);
    // the engine still works after serving as a sim scheduler
    use camp::core::backend::CampBackend;
    let mut engine = engine;
    let a = fill(4 * 8, 3);
    let b = fill(8 * 4, 5);
    let req = camp::core::GemmRequest::dense(4, 4, 8, a.clone(), b.clone()).unwrap();
    assert_eq!(engine.execute(&req).unwrap().output.c, camp::gemm::gemm_i32_ref(4, 4, 8, &a, &b));
}

#[test]
fn merged_stats_follow_the_lane_model() {
    let opts = multi_unit_opts();
    let r =
        simulate_gemm_on(CoreConfig::a64fx(), Method::Camp8, 20, 70, 260, &opts, &SerialScheduler);
    assert!(r.lanes > 1);
    // max-across-lanes wall-clock sits strictly between one lane's
    // share and the full serial sum
    assert!(r.stats.cycles < r.serial_cycles);
    assert!(r.stats.cycles * r.lanes as u64 >= r.serial_cycles);
    // and the defaults of SimStats merge to zero harmlessly
    let mut z = SimStats::default();
    z.merge_parallel(&r.stats);
    assert_eq!(z, r.stats);
}
