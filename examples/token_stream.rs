//! Serving tokens: prompt → prefill → KV-cached decode, end to end.
//!
//! Builds a small quantized transformer, registers its weights with
//! the host engine, wraps the engine in a dispatcher, and streams
//! tokens from two concurrent `InferSession` tenants — then replays
//! one stream on the cycle-accurate simulator and on the pure
//! `gemm_i32_ref` executor to show all three agree bit for bit.
//!
//! ```sh
//! cargo run --release --example token_stream
//! ```

use std::sync::Arc;

use camp::core::backend::{CampBackend, SimBackend};
use camp::core::CampEngine;
use camp::infer::{BackendExec, CheckedExec, InferContext, InferSession, Model, RefExec};
use camp::models::TransformerConfig;
use camp::pipeline::CoreConfig;

fn main() {
    let cfg = TransformerConfig { hidden: 32, ff_dim: 64, heads: 4, layers: 3, seq_len: 64 };
    let vocab = 64;
    let model = Arc::new(Model::new(cfg, vocab, 0xCA3D));
    println!(
        "model: {} layers x d={} ({} heads), ff={}, vocab={} -> {} weight matrices",
        cfg.layers,
        cfg.hidden,
        cfg.heads,
        cfg.ff_dim,
        vocab,
        model.weight_count()
    );

    // register once, then wrap the engine in a dispatcher: handles are
    // validated against the snapshot taken when the dispatcher starts
    let mut engine = CampEngine::from_env();
    let handles = Arc::new(model.register(&mut engine));
    let dispatcher = engine.dispatch();

    // two users, one engine: each session is its own dispatcher tenant
    let mut alice = InferSession::new(&dispatcher, Arc::clone(&model), Arc::clone(&handles));
    let mut bob = InferSession::new(&dispatcher, Arc::clone(&model), Arc::clone(&handles));

    let prompt_a: Vec<u32> = vec![7, 21, 42, 3];
    let prompt_b: Vec<u32> = vec![1, 2, 3, 4, 5];
    let ta = alice.prefill(&prompt_a).expect("prefill A");
    let tb = bob.prefill(&prompt_b).expect("prefill B");

    // interleaved decode: the scheduler batches across tenants, decode
    // steps tagged Priority::Decode
    let mut stream_a = vec![ta.first];
    let mut stream_b = vec![tb.first];
    for _ in 0..8 {
        stream_a.push(alice.decode_step().expect("decode A"));
        stream_b.push(bob.decode_step().expect("decode B"));
    }
    println!("alice {:?} -> {:?}", prompt_a, stream_a);
    println!("bob   {:?} -> {:?}", prompt_b, stream_b);

    let stats = dispatcher.stats();
    println!(
        "dispatcher: {} batches submitted, {} executed, {} shed",
        stats.submitted, stats.executed, stats.shed
    );

    // replay alice's stream on the pure reference executor
    let mut ctx = InferContext::for_model(&model);
    let mut reference = RefExec::new(&model);
    let mut ref_stream = vec![ctx.prefill_with(&model, &mut reference, &prompt_a).unwrap().first];
    for _ in 0..8 {
        ref_stream.push(ctx.decode_with(&model, &mut reference).unwrap());
    }
    assert_eq!(stream_a, ref_stream, "dispatcher path must match gemm_i32_ref");

    // ... and on the cycle-accurate simulator, cross-checking every
    // layer's GeMM output against the reference as it happens
    let mut sim = SimBackend::new(CoreConfig::a64fx());
    let sim_handles = model.register(&mut sim);
    let mut ctx = InferContext::for_model(&model);
    let mut checked = CheckedExec::new(&model, BackendExec::new(&mut sim, &sim_handles));
    let mut sim_stream = vec![ctx.prefill_with(&model, &mut checked, &prompt_a).unwrap().first];
    for _ in 0..8 {
        sim_stream.push(ctx.decode_with(&model, &mut checked).unwrap());
    }
    assert_eq!(stream_a, sim_stream, "simulator must serve the same tokens");
    println!("parity: host == simulator == gemm_i32_ref, bit for bit");
}
