//! Write a program against the virtual vector ISA directly: the Fig. 9
//! micro-kernel, hand-assembled, executed functionally and timed on both
//! cores. Shows the `camp` instruction's semantics and the simulator API
//! at the lowest level.
//!
//! ```sh
//! cargo run --release --example isa_playground
//! ```

use camp::isa::asm::Assembler;
use camp::isa::inst::CampMode;
use camp::isa::reg::{S, V};
use camp::pipeline::{CoreConfig, FuKind, Simulator};

fn main() {
    // One 4×64 × 64×4 tile: kc = 64 → 4 camp.s8 issues (Fig. 9's loop).
    let kc = 64i64;
    let mut a = Assembler::new("fig9_microkernel");
    a.li(S(1), 0); // packed A panel (4×kc col-major)
    a.li(S(2), 4096); // packed B panel (kc×4 row-major)
    a.li(S(3), 8192); // result tile
    a.vzero(V(2));
    a.li(S(20), 0);
    a.li(S(4), kc / 16);
    a.label("k_loop");
    a.vload(V(0), S(1), 0);
    a.vload(V(1), S(2), 0);
    a.camp(CampMode::I8, V(2), V(0), V(1));
    a.addi(S(1), S(1), 64);
    a.addi(S(2), S(2), 64);
    a.addi(S(20), S(20), 1);
    a.blt(S(20), S(4), "k_loop");
    a.vstore(V(2), S(3), 0); // store_32bit(&AB[0], ab_v)
    let prog = a.finish();

    for core in [CoreConfig::a64fx(), CoreConfig::edge_riscv()] {
        let mut sim = Simulator::new(core, 1 << 16);
        // fill the packed panels with a known pattern
        for i in 0..(4 * kc) as u64 {
            sim.machine_mut().write_i8(i, (i % 11) as i8 - 5);
            sim.machine_mut().write_i8(4096 + i, (i % 7) as i8 - 3);
        }
        sim.run(&prog, 100_000).expect("runs");

        // verify the 4×4 tile against a host-side reference
        let machine = sim.machine();
        for i in 0..4u64 {
            for j in 0..4u64 {
                let mut acc = 0i32;
                for l in 0..kc as u64 {
                    let av = machine.read_i8(l * 4 + i) as i32;
                    let bv = machine.read_i8(4096 + l * 4 + j) as i32;
                    acc += av * bv;
                }
                assert_eq!(machine.read_i32(8192 + (i * 4 + j) * 4), acc);
            }
        }

        let s = sim.stats();
        println!(
            "{:10}: {:>4} cycles for {} insts ({} MACs) — camp busy {:.2}, IPC {:.2}",
            core.name,
            s.cycles,
            s.insts,
            s.macs,
            s.fu_busy_rate(FuKind::Camp, 1),
            s.insts as f64 / s.cycles as f64
        );
    }
    println!("tile verified on both cores ✔");
}
