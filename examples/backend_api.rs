//! One GeMM API, two substrates: build a request batch once, execute it
//! on the host-speed engine *and* on the cycle-accurate simulated CAMP
//! core, and verify the outputs are bit-identical — then stream the
//! same requests through a serving session on each backend.
//!
//! ```sh
//! cargo run --release --example backend_api
//! ```

use std::sync::Arc;

use camp::core::backend::{CampBackend, Capability, ExecStats, SimBackend};
use camp::core::{CampEngine, DType, GemmRequest, Operand};
use camp::pipeline::CoreConfig;

fn tensor(len: usize, seed: i32) -> Vec<i8> {
    (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
}

/// A small attention-flavored batch: two activations against one shared
/// weight matrix (dedup fodder), plus an i4 problem.
fn build_requests(m: usize, n: usize, k: usize) -> Vec<GemmRequest> {
    let shared: Arc<[i8]> = tensor(k * n, 5).into();
    vec![
        GemmRequest::builder()
            .m(m)
            .n(n)
            .k(k)
            .activation(tensor(m * k, 3))
            .weights(Operand::Dense(Arc::clone(&shared)))
            .build()
            .expect("well-formed"),
        GemmRequest::builder()
            .m(m)
            .n(n)
            .k(k)
            .activation(tensor(m * k, 7))
            .weights(Operand::Dense(shared)) // same buffer: B packs once
            .build()
            .expect("well-formed"),
        GemmRequest::builder()
            .m(m)
            .n(n)
            .k(k)
            .activation(tensor(m * k, 9))
            .weights(Operand::from_dense(tensor(k * n, 11)))
            .dtype(DType::I4) // 4-bit kernel, same surface
            .build()
            .expect("well-formed"),
    ]
}

fn describe<B: CampBackend>(backend: &B) {
    println!(
        "  {}: threads={}, host-speed={}, cycle-accurate={}",
        backend.name(),
        backend.threads(),
        backend.supports(Capability::HostSpeed),
        backend.supports(Capability::CycleAccurateStats),
    );
}

fn main() {
    let (m, n, k) = (16, 16, 64);
    let requests = build_requests(m, n, k);

    let mut host = CampEngine::with_threads(2);
    let mut sim = SimBackend::new(CoreConfig::a64fx()).with_threads(2);
    println!("one request batch ({} GeMMs), two backends:", requests.len());
    describe(&host);
    describe(&sim);

    // --- the same batch, both substrates, bit-identical outputs ---
    let fast = host.execute_batch(&requests).expect("host execution");
    let slow = sim.execute_batch(&requests).expect("simulated execution");
    assert_eq!(fast.outputs, slow.outputs, "substrates must agree bit-for-bit");
    println!("outputs identical across substrates: {} matrices", fast.outputs.len());

    // --- callers branch on stats, not on API ---
    for (who, stats) in [("host", &fast.stats), ("sim", &slow.stats)] {
        match stats {
            ExecStats::Host(s) => println!(
                "  {who}: {} camp issues, {} B-pack bytes (shared weight packed once)",
                s.camp_issues, s.packed_b_bytes
            ),
            ExecStats::Sim(s) => println!(
                "  {who}: {} simulated cycles, {} instructions, {:.2} IPC",
                s.cycles,
                s.insts,
                s.insts as f64 / s.cycles as f64
            ),
            // ExecStats is #[non_exhaustive]: future substrates land here
            other => println!("  {who}: {} MACs on an unknown substrate", other.macs()),
        }
    }

    // --- registered weights work on both substrates too ---
    let w = tensor(k * n, 13);
    let hh = host.register_weights(n, k, &w, DType::I8);
    let sh = sim.register_weights(n, k, &w, DType::I8);
    let a = tensor(m * k, 15);
    let host_req = GemmRequest::with_weights(m, a.clone(), hh).expect("well-formed");
    let sim_req = GemmRequest::with_weights(m, a, sh).expect("well-formed");
    let via_handle = host.execute(&host_req).expect("host execution");
    let sim_handle = sim.execute(&sim_req).expect("simulated execution");
    assert_eq!(via_handle.output, sim_handle.output);
    println!("registered-weight requests agree across substrates");

    // --- and the serving session is generic over the backend ---
    let mut session = sim.serve(); // submit/poll over the *simulator*
    let ticket = session.submit(vec![sim_req]).expect("valid request");
    let outcome = session.wait(ticket);
    assert_eq!(outcome.outputs[0], via_handle.output);
    println!(
        "simulated serving session returned the same bytes ({} cycles simulated)",
        outcome.stats.as_sim().expect("sim stats").cycles
    );
    println!("OK: one request surface, host and simulated execution agree.");
}
