//! A quantized CNN convolution layer on the simulated CAMP hardware:
//! im2col + blocked GeMM, comparing CAMP-8bit against the OpenBLAS-class
//! fp32 baseline on the A64FX-like core — the Fig. 13 experiment for one
//! real layer, end to end.
//!
//! ```sh
//! cargo run --release --example cnn_layer
//! ```

use camp::core::gemm_i32_ref;
use camp::gemm::{simulate_gemm, GemmOptions, Method};
use camp::models::conv::{im2col, weights_to_b, Conv2d, Tensor3};
use camp::pipeline::CoreConfig;

fn main() {
    // A ResNet-style 3×3 convolution: 32→64 channels on a 16×16 map.
    let conv = Conv2d { in_channels: 32, out_channels: 64, kernel: 3, stride: 1, padding: 1 };
    let (h, w) = (16, 16);

    // Synthetic quantized activations and weights (int8, 4-bit-safe range).
    let mut input = Tensor3::zeros(conv.in_channels, h, w);
    for (i, v) in input.data.iter_mut().enumerate() {
        *v = ((i * 7) % 15) as i8 - 7;
    }
    let weights: Vec<i8> =
        (0..conv.out_channels * conv.in_channels * 9).map(|i| ((i * 5) % 13) as i8 - 6).collect();

    // 1. Functional path: im2col → GeMM → verify against direct conv.
    let a = im2col(&conv, &input);
    let b = weights_to_b(&conv, &weights);
    let shape = conv.gemm_shape(h, w);
    let c = gemm_i32_ref(shape.m, shape.n, shape.k, &a, &b);
    let direct = conv.direct(&input, &weights);
    let (oh, ow) = conv.out_size(h, w);
    for oc in 0..conv.out_channels {
        for r in 0..oh * ow {
            assert_eq!(c[r * conv.out_channels + oc], direct[oc * oh * ow + r]);
        }
    }
    println!("im2col GeMM {} matches direct convolution ✔", shape);

    // 2. Architectural path: simulate the same GeMM on the A64FX-like
    //    core with CAMP and with the fp32 baseline.
    let opts = GemmOptions::default();
    let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, shape.m, shape.n, shape.k, &opts);
    let blas =
        simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, shape.m, shape.n, shape.k, &opts);
    assert!(camp.correct && blas.correct);

    println!("\nsimulated on the A64FX-like core:");
    println!("  OpenBLAS fp32 : {:>9} cycles ({:.0} GOPS)", blas.stats.cycles, blas.gops);
    println!("  CAMP 8-bit    : {:>9} cycles ({:.0} GOPS)", camp.stats.cycles, camp.gops);
    println!(
        "  speedup {:.2}x, instruction ratio {:.2}",
        blas.stats.cycles as f64 / camp.stats.cycles as f64,
        camp.stats.insts as f64 / blas.stats.insts as f64
    );
}
