//! Quickstart: quantize an fp32 matrix product to int8, run it through
//! the CAMP GeMM engine, and check the result against the float answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use camp::core::backend::CampBackend;
use camp::core::{CampEngine, GemmRequest};
use camp::quant::{sqnr_db, SymmetricQuantizer};

fn main() {
    let (m, n, k) = (32, 24, 96);

    // A pair of synthetic fp32 matrices (e.g. a layer's weights and
    // activations).
    let a_f: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.71).sin()).collect();
    let b_f: Vec<f32> = (0..k * n).map(|i| ((i as f32) * 0.37).cos()).collect();

    // 1. Quantize both operands to int8.
    let qa = SymmetricQuantizer::fit(&a_f, 8);
    let qb = SymmetricQuantizer::fit(&b_f, 8);
    let a_q = qa.quantize_all(&a_f);
    let b_q = qb.quantize_all(&b_f);

    // 2. Integer GeMM with the CAMP micro-kernel semantics
    //    (4×16 · 16×4 outer-product tiles, i32 accumulation), through
    //    the unified request API.
    let req = GemmRequest::dense(m, n, k, a_q, b_q).expect("well-formed request");
    let outcome = CampEngine::new().execute(&req).expect("host execution");
    let c_q = outcome.output.c;
    let stats = *outcome.stats.as_host().expect("host stats");

    // 3. Dequantize and compare with the float product.
    let scale = qa.scale * qb.scale;
    let c_deq: Vec<f32> = c_q.iter().map(|&v| v as f32 * scale).collect();
    let mut c_ref = vec![0f32; m * n];
    for i in 0..m {
        for l in 0..k {
            for j in 0..n {
                c_ref[i * n + j] += a_f[i * k + l] * b_f[l * n + j];
            }
        }
    }

    println!("CAMP int8 GeMM  {m}x{n}x{k}");
    println!("  camp issues      : {}", stats.camp_issues);
    println!("  vector loads     : {}", stats.vector_loads);
    println!("  MACs represented : {}", stats.macs);
    println!("  MACs per issue   : {:.0}", stats.macs as f64 / stats.camp_issues as f64);
    println!("  SQNR vs fp32     : {:.1} dB", sqnr_db(&c_ref, &c_deq));
    let max_err = c_ref.iter().zip(&c_deq).map(|(&r, &q)| (r - q).abs()).fold(0f32, f32::max);
    println!("  max abs error    : {max_err:.4}");
    assert!(sqnr_db(&c_ref, &c_deq) > 25.0, "quantized GeMM should track fp32 closely");
    println!("OK: int8 CAMP GeMM tracks the fp32 product.");
}
