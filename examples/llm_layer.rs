//! A BERT-base feed-forward layer, quantized to 4 bits and run on both
//! simulated platforms — the Fig. 14 experiment for one layer, plus the
//! energy model (Fig. 16 / Table 4 metrics).
//!
//! ```sh
//! cargo run --release --example llm_layer
//! ```

use camp::energy::EnergyModel;
use camp::gemm::{simulate_gemm, GemmOptions, Method};
use camp::models::LlmModel;
use camp::pipeline::CoreConfig;

fn main() {
    let model = LlmModel::BertBase;
    let shape = model.config().ff_shape();
    println!("{} feed-forward GeMM: {shape}", model.name());

    let opts = GemmOptions::default();

    for (core, emodel) in [
        (CoreConfig::a64fx(), EnergyModel::a64fx_7nm()),
        (CoreConfig::edge_riscv(), EnergyModel::edge_22nm()),
    ] {
        println!("\n== {} ==", core.name);
        let base_method =
            if core.name == "a64fx-sve" { Method::OpenblasF32 } else { Method::HandvInt32 };
        let base = simulate_gemm(core, base_method, shape.m, shape.n, shape.k, &opts);
        let e_base = emodel.evaluate(&base.stats);
        println!(
            "  baseline ({:12}): {:>9} cycles, {:>6.1} GOPS, {:>7.1} GOPS/W",
            base_method.name(),
            base.stats.cycles,
            e_base.gops,
            e_base.gops_per_watt
        );
        for method in [Method::Camp8, Method::Camp4] {
            let r = simulate_gemm(core, method, shape.m, shape.n, shape.k, &opts);
            assert!(r.correct);
            let e = emodel.evaluate(&r.stats);
            println!(
                "  {:22}: {:>9} cycles, {:>6.1} GOPS, {:>7.1} GOPS/W  ({:.1}x speedup, {:.0}% energy)",
                method.name(),
                r.stats.cycles,
                e.gops,
                e.gops_per_watt,
                base.stats.cycles as f64 / r.stats.cycles as f64,
                100.0 * e.total_pj / e_base.total_pj,
            );
        }
    }
}
