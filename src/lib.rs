//! # camp — reproduction of the CAMP architecture (MICRO 2025)
//!
//! *Empowering Vector Architectures for ML: The CAMP Architecture for
//! Matrix Multiplication.*
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's contribution: hybrid multiplier, CAMP
//!   functional unit, and a host-speed CAMP GeMM engine;
//! * [`isa`] — the virtual vector ISA (with the `camp` instruction);
//! * [`cache`] / [`pipeline`] — the simulation substrate (cache
//!   hierarchy, in-order edge core, OoO A64FX-like core);
//! * [`gemm`] — GotoBLAS-style blocked GeMM with every baseline kernel
//!   the paper evaluates;
//! * [`quant`] — the quantization stack and the Fig. 7 accuracy study;
//! * [`models`] — Table 3 CNN layers, transformer configs, im2col;
//! * [`infer`] — end-to-end quantized LLM inference: KV-cached
//!   prefill/decode served through the dispatcher;
//! * [`energy`] — area/power/energy models for TSMC 7 nm and GF 22FDX.
//!
//! # Quickstart
//!
//! ```
//! use camp::core::backend::CampBackend;
//! use camp::core::{gemm_i32_ref, CampEngine, GemmRequest};
//!
//! let (m, n, k) = (8, 8, 32);
//! let a: Vec<i8> = (0..m * k).map(|i| (i % 15) as i8 - 7).collect();
//! let b: Vec<i8> = (0..k * n).map(|i| (i % 13) as i8 - 6).collect();
//! let req = GemmRequest::dense(m, n, k, a.clone(), b.clone()).unwrap();
//! let c = CampEngine::new().execute(&req).unwrap();
//! assert_eq!(c.output.c, gemm_i32_ref(m, n, k, &a, &b));
//! ```

pub use camp_cache as cache;
pub use camp_core as core;
pub use camp_energy as energy;
pub use camp_gemm as gemm;
pub use camp_infer as infer;
pub use camp_isa as isa;
pub use camp_models as models;
pub use camp_pipeline as pipeline;
pub use camp_quant as quant;
